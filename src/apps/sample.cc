/// \file
/// Sample: sample sort exchanging keys with fine-grained
/// am_request/am_reply messages — the paper's most
/// communication-intensive application ("sends two double floating
/// point numbers in each message when exchanging data in its main
/// communication phase"). Keys travel in pairs of 8-byte values per
/// request; every request is acknowledged with a credit reply, and a
/// bounded window of outstanding requests provides flow control (so
/// message latency is on the critical path, as in the original).

#include "apps/apps.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "am/am.h"
#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

constexpr int kBaseKeysTotal = 16384;
constexpr int kOversample = 8;

} // namespace

AppResult
run_sample(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int nlocal = std::max(16, kBaseKeysTotal / scale / p);
    const int ntotal = nlocal * p;

    Timer timer(p);
    bool sorted_ok = false;
    int64_t total_after = 0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();

        // Received keys accumulate here (handler-appended).
        std::vector<uint64_t> recv;
        recv.reserve(static_cast<size_t>(nlocal) * 3);
        sim::Flag* credits = ctx.new_flag();
        // Handler 0: receive keys and reply with a credit. Handler 1:
        // credit arrival at the sender.
        int h_keys = ep.register_handler([&](const am::Msg& m) {
            size_t cnt = m.size / sizeof(uint64_t);
            for (size_t i = 0; i < cnt; ++i) {
                uint64_t k;
                std::memcpy(&k, m.data + i * sizeof(uint64_t),
                            sizeof(k));
                recv.push_back(k);
            }
            ctx.compute(Cost::kKeyCompare * static_cast<double>(cnt));
            m.reply(1, nullptr, 0);
        });
        ep.register_handler(
            [&](const am::Msg&) { credits->add(1); });
        constexpr uint64_t kWindow = 8;
        uint64_t msgs_sent = 0;

        // Deterministic per-rank keys.
        std::vector<uint64_t> keys(static_cast<size_t>(nlocal));
        mp::Rng kr(1000 + static_cast<uint64_t>(me));
        for (auto& k : keys)
            k = kr.next_u64() >> 1;

        // Splitter selection: everyone stores its samples into rank
        // 0's sample slots; rank 0 sorts and broadcasts splitters.
        uint64_t* samples = sc.all_spread_alloc<uint64_t>(
            "sample.smp",
            static_cast<size_t>(kOversample) * static_cast<size_t>(p));
        uint64_t* splitters = sc.all_spread_alloc<uint64_t>(
            "sample.spl", static_cast<size_t>(p));
        coll.barrier();
        timer.start(me, ctx.now());

        std::vector<uint64_t> my_samples(
            static_cast<size_t>(kOversample));
        for (int s = 0; s < kOversample; ++s)
            my_samples[static_cast<size_t>(s)] = keys[static_cast<size_t>(
                ctx.rng().next_below(static_cast<uint64_t>(nlocal)))];
        auto g0 = sc.global<uint64_t>("sample.smp", 0) +
                  static_cast<ptrdiff_t>(me * kOversample);
        sc.store(g0, my_samples.data(),
                 static_cast<size_t>(kOversample));
        sc.all_store_sync(coll);
        if (me == 0) {
            std::sort(samples,
                      samples + static_cast<size_t>(kOversample) * p);
            for (int r = 0; r < p - 1; ++r)
                splitters[r] =
                    samples[static_cast<size_t>((r + 1) * kOversample)];
            splitters[p - 1] = ~0ull;
            ctx.compute(Cost::kKeyCompare * kOversample * p * 10.0);
        }
        coll.broadcast(splitters,
                       static_cast<size_t>(p) * sizeof(uint64_t), 0);

        // Key exchange: route every key with a two-key am_request.
        auto dest_of = [&](uint64_t k) {
            int d = 0;
            while (splitters[d] <= k)
                ++d;
            return d;
        };
        std::vector<int64_t> sent_to(static_cast<size_t>(p), 0);
        std::vector<std::vector<uint64_t>> pending(
            static_cast<size_t>(p));
        uint64_t kept = 0;
        for (int i = 0; i < nlocal; ++i) {
            uint64_t k = keys[static_cast<size_t>(i)];
            int d = dest_of(k);
            ctx.compute(Cost::kKeyCompare *
                        static_cast<double>(d + 1));
            if (d == me) {
                // Keys for the local bucket never leave the node.
                recv.push_back(k);
                ++kept;
                continue;
            }
            auto& pq = pending[static_cast<size_t>(d)];
            pq.push_back(k);
            if (pq.size() == 2) { // two values per message
                ep.request(d, h_keys, pq.data(),
                           pq.size() * sizeof(uint64_t));
                sent_to[static_cast<size_t>(d)] += 2;
                pq.clear();
                ++msgs_sent;
                // Flow control: bounded outstanding requests.
                if (msgs_sent > kWindow)
                    ep.poll_until(*credits, msgs_sent - kWindow);
            }
            // Keep the inbound queue drained while sending.
            ep.poll();
        }
        for (int d = 0; d < p; ++d) {
            if (d == me)
                continue;
            auto& pq = pending[static_cast<size_t>(d)];
            if (!pq.empty()) {
                ep.request(d, h_keys, pq.data(),
                           pq.size() * sizeof(uint64_t));
                sent_to[static_cast<size_t>(d)] +=
                    static_cast<int64_t>(pq.size());
                ++msgs_sent;
            }
        }
        // Drain all credits: every request acknowledged.
        ep.poll_until(*credits, msgs_sent);

        // Termination: learn how many keys target each rank. The
        // locally-kept keys are already in recv.
        std::vector<int64_t> totals(sent_to);
        coll.allreduce_sum_i64_vec(totals.data(), p);
        uint64_t expect =
            kept + static_cast<uint64_t>(totals[static_cast<size_t>(me)]);
        while (recv.size() < expect) {
            if (!ep.poll())
                ep.wait_arrival();
        }

        // Local sort.
        std::sort(recv.begin(), recv.end());
        double lg = recv.empty()
                        ? 0.0
                        : std::log2(static_cast<double>(recv.size()) + 1);
        ctx.compute(Cost::kKeyCompare *
                    static_cast<double>(recv.size()) * lg);
        coll.barrier();
        timer.end(me, ctx.now());

        // Validation: locally sorted, boundaries ordered, and the
        // global key count preserved.
        bool local_sorted =
            std::is_sorted(recv.begin(), recv.end());
        uint64_t* boundary =
            sc.all_spread_alloc<uint64_t>("sample.bnd", 2);
        boundary[0] = recv.empty() ? 0 : recv.front();
        boundary[1] = recv.empty() ? ~0ull : recv.back();
        coll.barrier();
        bool ordered = true;
        if (me + 1 < p) {
            uint64_t nxt_min =
                sc.read(sc.global<uint64_t>("sample.bnd", me + 1));
            if (!recv.empty() && nxt_min < recv.back())
                ordered = false;
        }
        int64_t count = coll.allreduce_sum_i64(
            static_cast<int64_t>(recv.size()));
        double ok = (local_sorted && ordered) ? 1.0 : 0.0;
        double all_ok = -coll.allreduce_max(-ok); // min
        if (me == 0) {
            sorted_ok = all_ok > 0.5;
            total_after = count;
        }
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = static_cast<double>(total_after);
    res.valid = sorted_ok && total_after == ntotal;
    res.run = result;
    return res;
}

} // namespace apps
