/// \file
/// The ten parallel applications of the paper's Table 5, each
/// re-implemented with the same programming style and communication
/// pattern on our layers:
///
///   Moldy      native RMA   Monte-Carlo molecular dynamics; PUT
///                           broadcasts of coordinate blocks
///   LU         CRL          blocked dense LU factorization
///   Barnes-Hut CRL          hierarchical n-body (quadtree)
///   Water      CRL          n-squared molecular dynamics
///   MM         Split-C      blocked matrix multiplication
///   FFT        Split-C      1-D FFT, bulk all-to-all transposes
///   Sample     Split-C/AM   sample sort, per-key am_request messages
///   Sampleb    Split-C      sample sort, bulk transfers
///   P-Ray      Split-C      sphere ray tracer, cached scene objects
///   Wator      Split-C      fish n-body; fine-grained remote GETs
///
/// Every app runs its real algorithm (results are self-checked) and
/// charges explicit compute time, so the simulated execution time
/// reflects the paper's compute/communicate ratios. Problem sizes are
/// scaled-down versions of Table 5 (documented in EXPERIMENTS.md);
/// `scale` multiplies the default size.

#ifndef MSGPROXY_APPS_APPS_H
#define MSGPROXY_APPS_APPS_H

#include <string>
#include <vector>

#include "rma/system.h"

namespace apps {

/// Result of one application run.
struct AppResult
{
    double elapsed_us = 0.0; ///< timed region (between the app's
                             ///< start and end barriers)
    double checksum = 0.0;   ///< deterministic self-check value
    bool valid = false;      ///< self-check passed
    rma::RunResult run;      ///< traffic and utilization statistics
};

AppResult run_moldy(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_lu(const rma::SystemConfig& cfg, int scale = 1);

/// LU with an explicit block size (the paper notes that a 1000x1000
/// matrix with block size 20 behaves like the bulk-transfer programs:
/// larger blocks shift LU from latency-bound to bandwidth-bound).
AppResult run_lu_block(const rma::SystemConfig& cfg, int scale,
                       int block);
AppResult run_barnes(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_water(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_mm(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_fft(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_sample(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_sampleb(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_pray(const rma::SystemConfig& cfg, int scale = 1);
AppResult run_wator(const rma::SystemConfig& cfg, int scale = 1);

/// Registry entry for the benchmark harness.
struct AppEntry
{
    const char* name;
    const char* style; ///< "RMA", "CRL", or "Split-C"
    AppResult (*fn)(const rma::SystemConfig&, int);
};

/// All ten applications in Table 5 order.
const std::vector<AppEntry>& all_apps();

} // namespace apps

#endif // MSGPROXY_APPS_APPS_H
