/// \file
/// Barnes-Hut: hierarchical 2-D n-body simulation in the CRL style
/// (adapted from the SPLASH-2 code the paper uses). Body blocks are
/// CRL regions (one per rank). Each iteration every rank reads all
/// body blocks, builds a quadtree with centre-of-mass summaries,
/// computes approximate forces for its bodies with a theta-opening
/// tree walk, and writes its block back.
///
/// Self-check: the tree-walk force on a sample of bodies is compared
/// against the exact direct sum (the theta approximation must stay
/// within a few percent) and positions remain finite.

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "am/am.h"
#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"

namespace apps {

namespace {

constexpr int kBaseBodies = 1024;
constexpr int kIters = 3;
constexpr double kTheta = 0.6;
constexpr double kSoft2 = 0.05;
constexpr double kDt = 0.01;

/// Quadtree node over [cx +- half, cy +- half].
struct QNode
{
    double cx, cy, half;
    double mass = 0.0;
    double mx = 0.0, my = 0.0; ///< mass-weighted centroid accumulators
    int body = -1;             ///< body index for leaves (-1: internal)
    int child[4] = {-1, -1, -1, -1};
    bool leaf = true;
};

class QuadTree
{
  public:
    void
    build(const std::vector<double>& x, const std::vector<double>& y,
          const std::vector<double>& m)
    {
        nodes_.clear();
        double lo = -1e9, hi = 1e9;
        double minv = 1e30, maxv = -1e30;
        for (double v : x) {
            minv = std::min(minv, v);
            maxv = std::max(maxv, v);
        }
        for (double v : y) {
            minv = std::min(minv, v);
            maxv = std::max(maxv, v);
        }
        lo = minv;
        hi = maxv;
        double half = (hi - lo) / 2 + 1e-6;
        nodes_.push_back(QNode{(lo + hi) / 2, (lo + hi) / 2, half});
        for (size_t i = 0; i < x.size(); ++i)
            insert(0, static_cast<int>(i), x, y, 0);
        summarize(0, x, y, m);
        visits_ = 0;
    }

    /// Accumulates the approximate force on (px, py); returns the
    /// number of visited nodes (for compute-cost charging).
    void
    force(double px, double py, int self,
          const std::vector<double>& x, const std::vector<double>& y,
          const std::vector<double>& m, double* fx, double* fy)
    {
        walk(0, px, py, self, x, y, m, fx, fy);
    }

    uint64_t visits() const { return visits_; }

  private:
    int
    quadrant(const QNode& n, double px, double py) const
    {
        return (px >= n.cx ? 1 : 0) + (py >= n.cy ? 2 : 0);
    }

    void
    insert(int ni, int body, const std::vector<double>& x,
           const std::vector<double>& y, int depth)
    {
        QNode& n = nodes_[static_cast<size_t>(ni)];
        if (n.leaf && n.body < 0) {
            n.body = body;
            return;
        }
        if (n.leaf) {
            if (depth > 48) {
                // Coincident points: drop into the same leaf slot by
                // merging masses at summarize time (keep first).
                return;
            }
            int old = n.body;
            n.body = -1;
            n.leaf = false;
            insert_child(ni, old, x, y, depth);
        }
        insert_child(ni, body, x, y, depth);
    }

    void
    insert_child(int ni, int body, const std::vector<double>& x,
                 const std::vector<double>& y, int depth)
    {
        // NOTE: re-fetch the node after any push_back (reallocation).
        int q = quadrant(nodes_[static_cast<size_t>(ni)],
                         x[static_cast<size_t>(body)],
                         y[static_cast<size_t>(body)]);
        if (nodes_[static_cast<size_t>(ni)].child[q] < 0) {
            QNode c;
            const QNode& n = nodes_[static_cast<size_t>(ni)];
            c.half = n.half / 2;
            c.cx = n.cx + ((q & 1) ? c.half : -c.half);
            c.cy = n.cy + ((q & 2) ? c.half : -c.half);
            nodes_.push_back(c);
            nodes_[static_cast<size_t>(ni)].child[q] =
                static_cast<int>(nodes_.size()) - 1;
        }
        insert(nodes_[static_cast<size_t>(ni)].child[q], body, x, y,
               depth + 1);
    }

    void
    summarize(int ni, const std::vector<double>& x,
              const std::vector<double>& y, const std::vector<double>& m)
    {
        QNode& n = nodes_[static_cast<size_t>(ni)];
        if (n.leaf) {
            if (n.body >= 0) {
                n.mass = m[static_cast<size_t>(n.body)];
                n.mx = x[static_cast<size_t>(n.body)] * n.mass;
                n.my = y[static_cast<size_t>(n.body)] * n.mass;
            }
            return;
        }
        for (int q = 0; q < 4; ++q) {
            int c = n.child[q];
            if (c < 0)
                continue;
            summarize(c, x, y, m);
            QNode& cn = nodes_[static_cast<size_t>(c)];
            nodes_[static_cast<size_t>(ni)].mass += cn.mass;
            nodes_[static_cast<size_t>(ni)].mx += cn.mx;
            nodes_[static_cast<size_t>(ni)].my += cn.my;
        }
    }

    void
    walk(int ni, double px, double py, int self,
         const std::vector<double>& x, const std::vector<double>& y,
         const std::vector<double>& m, double* fx, double* fy)
    {
        const QNode& n = nodes_[static_cast<size_t>(ni)];
        ++visits_;
        if (n.mass <= 0.0)
            return;
        if (n.leaf) {
            if (n.body < 0 || n.body == self)
                return;
            add_force(px, py, x[static_cast<size_t>(n.body)],
                      y[static_cast<size_t>(n.body)],
                      m[static_cast<size_t>(n.body)], fx, fy);
            return;
        }
        double gx = n.mx / n.mass;
        double gy = n.my / n.mass;
        double dx = gx - px, dy = gy - py;
        double dist = std::sqrt(dx * dx + dy * dy) + 1e-12;
        if (2.0 * n.half / dist < kTheta) {
            add_force(px, py, gx, gy, n.mass, fx, fy);
            return;
        }
        for (int q = 0; q < 4; ++q)
            if (n.child[q] >= 0)
                walk(n.child[q], px, py, self, x, y, m, fx, fy);
    }

    static void
    add_force(double px, double py, double qx, double qy, double mass,
              double* fx, double* fy)
    {
        double dx = qx - px, dy = qy - py;
        double r2 = dx * dx + dy * dy + kSoft2;
        double inv = mass / (r2 * std::sqrt(r2));
        *fx += dx * inv;
        *fy += dy * inv;
    }

    std::vector<QNode> nodes_;
    uint64_t visits_ = 0;
};

} // namespace

AppResult
run_barnes(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int nbodies = std::max(p, kBaseBodies / scale);
    const int chunk = (nbodies + p - 1) / p;
    // Region layout per rank: chunk * (x, y, mass).
    const size_t rbytes = static_cast<size_t>(chunk) * 3 * sizeof(double);

    Timer timer(p);
    double max_rel_err = 1e9;
    double checksum = 0.0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();
        const int lo = me * chunk;
        const int hi = std::min(lo + chunk, nbodies);
        const int nlocal = hi - lo;

        crl.create(rbytes);
        std::vector<double*> blocks(static_cast<size_t>(p));
        for (int r = 0; r < p; ++r) {
            blocks[static_cast<size_t>(r)] = static_cast<double*>(
                crl.map(crl::Crl::region_id(r, 0), rbytes));
        }
        std::vector<double> vx(static_cast<size_t>(chunk), 0.0);
        std::vector<double> vy(static_cast<size_t>(chunk), 0.0);

        // Deterministic clustered initial distribution.
        mp::Rng init(4242);
        std::vector<double> ix(static_cast<size_t>(nbodies));
        std::vector<double> iy(static_cast<size_t>(nbodies));
        std::vector<double> im(static_cast<size_t>(nbodies));
        for (int i = 0; i < nbodies; ++i) {
            double ang = init.next_range(0.0, 6.28318);
            double rad = std::pow(init.next_double(), 1.5) * 8.0;
            ix[static_cast<size_t>(i)] = rad * std::cos(ang);
            iy[static_cast<size_t>(i)] = rad * std::sin(ang);
            im[static_cast<size_t>(i)] = init.next_range(0.5, 1.5);
        }
        crl.start_write(crl::Crl::region_id(me, 0));
        for (int i = 0; i < nlocal; ++i) {
            blocks[static_cast<size_t>(me)][i * 3] =
                ix[static_cast<size_t>(lo + i)];
            blocks[static_cast<size_t>(me)][i * 3 + 1] =
                iy[static_cast<size_t>(lo + i)];
            blocks[static_cast<size_t>(me)][i * 3 + 2] =
                im[static_cast<size_t>(lo + i)];
        }
        crl.end_write(crl::Crl::region_id(me, 0));
        coll.barrier();
        timer.start(me, ctx.now());

        QuadTree tree;
        std::vector<double> ax(static_cast<size_t>(nbodies));
        std::vector<double> ay(static_cast<size_t>(nbodies));
        std::vector<double> am_(static_cast<size_t>(nbodies));

        for (int it = 0; it < kIters; ++it) {
            // Gather all bodies (coherent reads of every block).
            for (int r = 0; r < p; ++r)
                crl.start_read(crl::Crl::region_id(r, 0));
            for (int r = 0; r < p; ++r) {
                int rcount = std::min(chunk, nbodies - r * chunk);
                for (int j = 0; j < rcount; ++j) {
                    size_t g = static_cast<size_t>(r * chunk + j);
                    ax[g] = blocks[static_cast<size_t>(r)][j * 3];
                    ay[g] = blocks[static_cast<size_t>(r)][j * 3 + 1];
                    am_[g] = blocks[static_cast<size_t>(r)][j * 3 + 2];
                }
            }
            for (int r = 0; r < p; ++r)
                crl.end_read(crl::Crl::region_id(r, 0));
            // Snapshot is taken under the read hold; make sure every
            // rank has its snapshot before anyone writes.
            coll.barrier();

            // Build the tree and walk it for the local bodies.
            tree.build(ax, ay, am_);
            ep.compute(static_cast<double>(nbodies) * Cost::kTreeNode);
            std::vector<double> fx(static_cast<size_t>(nlocal), 0.0);
            std::vector<double> fy(static_cast<size_t>(nlocal), 0.0);
            for (int i = 0; i < nlocal; ++i) {
                tree.force(ax[static_cast<size_t>(lo + i)],
                           ay[static_cast<size_t>(lo + i)], lo + i, ax,
                           ay, am_, &fx[static_cast<size_t>(i)],
                           &fy[static_cast<size_t>(i)]);
            }
            ep.compute(static_cast<double>(tree.visits()) *
                       Cost::kTreeNode);

            // Integrate and publish.
            crl.start_write(crl::Crl::region_id(me, 0));
            for (int i = 0; i < nlocal; ++i) {
                vx[static_cast<size_t>(i)] +=
                    kDt * fx[static_cast<size_t>(i)];
                vy[static_cast<size_t>(i)] +=
                    kDt * fy[static_cast<size_t>(i)];
                blocks[static_cast<size_t>(me)][i * 3] +=
                    kDt * vx[static_cast<size_t>(i)];
                blocks[static_cast<size_t>(me)][i * 3 + 1] +=
                    kDt * vy[static_cast<size_t>(i)];
            }
            crl.end_write(crl::Crl::region_id(me, 0));
            ctx.compute(static_cast<double>(nlocal) * 4.0 * Cost::kFlop);
            coll.barrier();

            // Self-check on the last iteration: tree force vs direct
            // sum for the first local body.
            if (it == kIters - 1 && nlocal > 0) {
                double tfx = 0, tfy = 0;
                tree.force(ax[static_cast<size_t>(lo)],
                           ay[static_cast<size_t>(lo)], lo, ax, ay, am_,
                           &tfx, &tfy);
                double dfx = 0, dfy = 0;
                for (int j = 0; j < nbodies; ++j) {
                    if (j == lo)
                        continue;
                    double dx = ax[static_cast<size_t>(j)] -
                                ax[static_cast<size_t>(lo)];
                    double dy = ay[static_cast<size_t>(j)] -
                                ay[static_cast<size_t>(lo)];
                    double r2 = dx * dx + dy * dy + kSoft2;
                    double inv =
                        am_[static_cast<size_t>(j)] / (r2 * std::sqrt(r2));
                    dfx += dx * inv;
                    dfy += dy * inv;
                }
                double num = std::hypot(tfx - dfx, tfy - dfy);
                double den = std::hypot(dfx, dfy) + 1e-12;
                double err = num / den;
                max_rel_err = coll.allreduce_max(err);
            }
        }

        timer.end(me, ctx.now());
        double ck = 0.0;
        for (int i = 0; i < nlocal; ++i)
            ck += blocks[static_cast<size_t>(me)][i * 3] +
                  blocks[static_cast<size_t>(me)][i * 3 + 1];
        checksum = coll.allreduce_sum(ck);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = checksum;
    res.valid = std::isfinite(checksum) && max_rel_err < 0.15;
    res.run = result;
    return res;
}

} // namespace apps
