/// \file
/// MM: blocked matrix multiplication in the Split-C style. A, B and C
/// are block-row spread arrays; each rank computes its C rows,
/// fetching B block-rows from their owners with bulk gets (large
/// transfers: the bandwidth-sensitive regime of the paper).

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

constexpr int kBaseN = 192;

double
a_init(int i, int j)
{
    return std::sin(0.3 * i) + std::cos(0.2 * j);
}

double
b_init(int i, int j)
{
    return std::cos(0.1 * i - 0.4 * j);
}

} // namespace

AppResult
run_mm(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    int n = std::max(p, kBaseN / scale);
    n = ((n + p - 1) / p) * p; // divisible by p
    const int rows = n / p;

    Timer timer(p);
    double max_err = 1e9;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const int me = ctx.rank();

        double* a = sc.all_spread_alloc<double>(
            "mm.a", static_cast<size_t>(rows) * static_cast<size_t>(n));
        double* b = sc.all_spread_alloc<double>(
            "mm.b", static_cast<size_t>(rows) * static_cast<size_t>(n));
        std::vector<double> c(
            static_cast<size_t>(rows) * static_cast<size_t>(n), 0.0);
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < n; ++j) {
                a[static_cast<size_t>(i) * n + j] =
                    a_init(me * rows + i, j);
                b[static_cast<size_t>(i) * n + j] =
                    b_init(me * rows + i, j);
            }
        }
        coll.barrier();
        timer.start(me, ctx.now());

        // C_me += A_me[:, kb] * B_kb for every block-row kb of B.
        std::vector<double> bblk(static_cast<size_t>(rows) *
                                 static_cast<size_t>(n));
        for (int kb = 0; kb < p; ++kb) {
            const double* bsrc;
            if (kb == me) {
                bsrc = b;
            } else {
                sc.bulk_get(bblk.data(), sc.global<double>("mm.b", kb),
                            static_cast<size_t>(rows) *
                                static_cast<size_t>(n));
                bsrc = bblk.data();
            }
            for (int i = 0; i < rows; ++i) {
                for (int k = 0; k < rows; ++k) {
                    double aik =
                        a[static_cast<size_t>(i) * n + kb * rows + k];
                    const double* brow = &bsrc[static_cast<size_t>(k) * n];
                    double* crow = &c[static_cast<size_t>(i) * n];
                    for (int j = 0; j < n; ++j)
                        crow[j] += aik * brow[j];
                }
            }
            ctx.compute(2.0 * rows * rows * n * Cost::kFlop);
        }

        timer.end(me, ctx.now());

        // Validate a sampled set of entries against the direct sum.
        double err = 0.0;
        for (int s = 0; s < 16; ++s) {
            int i = (s * 7) % rows;
            int j = (s * 13) % n;
            double ref = 0.0;
            for (int k = 0; k < n; ++k)
                ref += a_init(me * rows + i, k) * b_init(k, j);
            err = std::max(err,
                           std::abs(c[static_cast<size_t>(i) * n + j] -
                                    ref));
        }
        max_err = coll.allreduce_max(err);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = max_err;
    res.valid = max_err < 1e-9 * n;
    res.run = result;
    return res;
}

} // namespace apps
