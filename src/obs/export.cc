#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace obs {

namespace {

/// Synthetic process id for the per-operation slice tracks.
constexpr int kOpsPid = 1000;

void
emit_ts_us(std::ostream& os, uint64_t ts_ns, uint64_t origin_ns)
{
    json_num(os, static_cast<double>(ts_ns - origin_ns) / 1000.0);
}

} // namespace

void
write_chrome_trace(std::ostream& os,
                   const std::vector<NodeTrace>& nodes)
{
    // Normalize to the earliest event so the viewer opens at t=0.
    uint64_t origin = UINT64_MAX;
    for (const NodeTrace& nt : nodes)
        for (const TraceEvent& e : nt.events)
            origin = std::min(origin, e.ts_ns);
    if (origin == UINT64_MAX)
        origin = 0;

    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    // Process / thread naming metadata.
    for (const NodeTrace& nt : nodes) {
        sep();
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
           << nt.node << ",\"args\":{\"name\":\"node " << nt.node
           << "\"}}";
    }
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kOpsPid
       << ",\"args\":{\"name\":\"ops\"}}";

    // Instant events on (node, proxy) tracks.
    for (const NodeTrace& nt : nodes) {
        for (const TraceEvent& e : nt.events) {
            sep();
            os << "{\"name\":\"" << stage_name(e.stage)
               << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            emit_ts_us(os, e.ts_ns, origin);
            os << ",\"pid\":" << nt.node
               << ",\"tid\":" << static_cast<int>(e.proxy)
               << ",\"args\":{\"op\":\"" << op_name(e.op)
               << "\",\"id\":" << e.tid << ",\"aux\":" << e.aux
               << "}}";
        }
    }

    // Per-operation duration slices between consecutive stages.
    std::map<uint64_t, std::vector<TraceEvent>> by_op;
    for (const NodeTrace& nt : nodes)
        for (const TraceEvent& e : nt.events)
            by_op[e.tid].push_back(e);
    for (auto& [tid, evs] : by_op) {
        std::stable_sort(evs.begin(), evs.end(),
                         [](const TraceEvent& a, const TraceEvent& b) {
                             if (a.ts_ns != b.ts_ns)
                                 return a.ts_ns < b.ts_ns;
                             return a.stage < b.stage;
                         });
        for (size_t i = 0; i + 1 < evs.size(); ++i) {
            const TraceEvent& a = evs[i];
            const TraceEvent& b = evs[i + 1];
            sep();
            os << "{\"name\":\"" << stage_name(a.stage) << "->"
               << stage_name(b.stage)
               << "\",\"ph\":\"X\",\"cat\":\"op\",\"ts\":";
            emit_ts_us(os, a.ts_ns, origin);
            os << ",\"dur\":";
            json_num(os,
                     static_cast<double>(b.ts_ns - a.ts_ns) / 1000.0);
            os << ",\"pid\":" << kOpsPid << ",\"tid\":" << tid
               << ",\"args\":{\"op\":\"" << op_name(a.op) << "\"}}";
        }
    }

    os << "\n]}\n";
}

} // namespace obs
