/// \file
/// Per-stage latency tracing for the real (host-thread) proxy
/// runtime: the observability counterpart of the paper's Table 2,
/// which breaks a one-word GET into its critical-path components.
///
/// A TraceRing is a fixed-capacity, drop-oldest event buffer with
/// exactly one writer (a proxy thread) and any number of concurrent
/// snapshot readers. Writers never allocate, never block, and never
/// lose the newest events: when the ring laps itself the oldest
/// entries are overwritten and counted in drops(). Every slot is a
/// per-slot seqlock built from relaxed atomics plus release/acquire
/// fences (Boehm's construction), so a reader racing the writer
/// observes either a fully written event or skips the slot — no torn
/// reads, and clean under ThreadSanitizer.
///
/// Events carry a node-unique operation id (`tid`), so the stages of
/// one command can be stitched back together across proxy threads
/// and across nodes (all nodes of a test cluster share one
/// steady_clock, making cross-node deltas meaningful).

#ifndef MSGPROXY_OBS_TRACE_H
#define MSGPROXY_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/annotations.h"
#include "util/orders.h"

namespace obs {

/// Lifecycle stages of one runtime command, in causal order. PUT-like
/// one-way ops end at kComplete on the *remote* node (data in place,
/// rsync fired); request/reply ops (GET, RQ DEQ) additionally pass
/// kRemoteHandler on the remote node and kReplyIn / kComplete back on
/// the issuing proxy.
enum class Stage : uint8_t {
    kSubmit = 0,    ///< user thread entered Endpoint::submit
    kDoorbell,      ///< command enqueued + doorbell about to ring
    kProxyPickup,   ///< owning proxy popped the command
    kWireOut,       ///< last fragment handed to the wire ring
    kRemoteHandler, ///< remote proxy began serving the request
    kReplyIn,       ///< reply fragment back at the issuing proxy
    kComplete       ///< completion action fired (lsync/rsync/CCB)
};

constexpr int kNumStages = 7;

inline const char*
stage_name(Stage s)
{
    switch (s) {
      case Stage::kSubmit: return "submit";
      case Stage::kDoorbell: return "doorbell";
      case Stage::kProxyPickup: return "proxy_pickup";
      case Stage::kWireOut: return "wire_out";
      case Stage::kRemoteHandler: return "remote_handler";
      case Stage::kReplyIn: return "reply_in";
      case Stage::kComplete: return "complete";
    }
    return "<invalid>";
}

/// Operation kinds tracked by the per-op latency histograms (the
/// runtime's command vocabulary).
enum class OpKind : uint8_t {
    kPut = 0,
    kGet,
    kEnq,
    kRqEnq,
    kRqDeq,
};

constexpr int kNumOps = 5;

inline const char*
op_name(OpKind k)
{
    switch (k) {
      case OpKind::kPut: return "put";
      case OpKind::kGet: return "get";
      case OpKind::kEnq: return "enq";
      case OpKind::kRqEnq: return "rq_enq";
      case OpKind::kRqDeq: return "rq_deq";
    }
    return "<invalid>";
}

/// One stage event. 24 bytes of payload; the ring stores it in three
/// relaxed-atomic words per slot.
struct TraceEvent
{
    uint64_t ts_ns = 0; ///< steady_clock timestamp
    uint64_t tid = 0;   ///< operation id (node-salted, never 0)
    Stage stage = Stage::kSubmit;
    OpKind op = OpKind::kPut;
    uint8_t proxy = 0; ///< proxy thread that recorded the event
    uint32_t aux = 0;  ///< stage-specific (bytes, fragment count)
};

/// Observability parameters of one Node (NodeConfig::obs).
struct Params
{
    /// Master switch for stage tracing, per-op latency histograms
    /// and batch-occupancy sampling. Off: the hot path pays one
    /// relaxed load + branch per command/packet. Can also be toggled
    /// at runtime via Node::set_obs_enabled().
    bool enabled = false;
    /// Per-proxy trace-ring capacity in events (rounded up to a
    /// power of two). 8192 events = 256 KB per proxy.
    size_t ring_capacity = 8192;
};

/// Fixed-capacity drop-oldest event ring; single writer, concurrent
/// snapshot readers. See the file comment for the slot protocol.
class TraceRing
{
  public:
    explicit TraceRing(size_t capacity)
    {
        size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        slots_ = std::make_unique<Slot[]>(cap);
    }

    TraceRing(const TraceRing&) = delete;
    TraceRing& operator=(const TraceRing&) = delete;

    /// Writer only. Overwrites the oldest event when full.
    MSGPROXY_HOT_PATH void
    record(const TraceEvent& e)
    {
        const uint64_t w = w_;
        Slot& s = slots_[w & mask_];
        // Mark the slot in-progress, then publish payload, then mark
        // complete. The release fence keeps a reader that observed
        // any payload word of this session from also reading the
        // slot's previous "complete" sequence value.
        s.seq.store(2 * w + 1, mp::ord::fenced);
        std::atomic_thread_fence(mp::ord::publish);
        s.ts.store(e.ts_ns, mp::ord::fenced);
        s.tid.store(e.tid, mp::ord::fenced);
        s.packed.store(pack(e), mp::ord::fenced);
        s.seq.store(2 * w + 2, mp::ord::publish);
        w_ = w + 1;
        widx_.store(w + 1, mp::ord::publish);
    }

    /// Events ever recorded (including overwritten ones).
    uint64_t
    recorded() const
    {
        return widx_.load(mp::ord::observe);
    }

    /// Events overwritten before they could be snapshot (drop-oldest
    /// policy): recorded() minus what the ring still holds.
    uint64_t
    drops() const
    {
        const uint64_t w = recorded();
        const uint64_t cap = mask_ + 1;
        return w > cap ? w - cap : 0;
    }

    /// Capacity in events (after power-of-two rounding).
    size_t capacity() const { return mask_ + 1; }

    /// Appends the surviving events (oldest first) to `out`. Safe to
    /// call while the writer runs: slots overwritten or mid-write
    /// during the scan are skipped rather than returned torn.
    void
    snapshot(std::vector<TraceEvent>& out) const
    {
        const uint64_t w = widx_.load(mp::ord::observe);
        const uint64_t cap = mask_ + 1;
        const uint64_t lo = w > cap ? w - cap : 0;
        for (uint64_t i = lo; i < w; ++i) {
            const Slot& s = slots_[i & mask_];
            if (s.seq.load(mp::ord::observe) != 2 * i + 2)
                continue; // overwritten or in progress
            TraceEvent e;
            e.ts_ns = s.ts.load(mp::ord::fenced);
            e.tid = s.tid.load(mp::ord::fenced);
            unpack(s.packed.load(mp::ord::fenced), e);
            std::atomic_thread_fence(mp::ord::observe);
            if (s.seq.load(mp::ord::fenced) != 2 * i + 2)
                continue; // overwritten while we copied
            out.push_back(e);
        }
    }

  private:
    struct Slot
    {
        /// 0: never written; 2w+1: session w in progress; 2w+2:
        /// session w complete.
        std::atomic<uint64_t> seq{0};
        std::atomic<uint64_t> ts{0};
        std::atomic<uint64_t> tid{0};
        std::atomic<uint64_t> packed{0};
    };

    static uint64_t
    pack(const TraceEvent& e)
    {
        return static_cast<uint64_t>(static_cast<uint8_t>(e.stage)) |
               (static_cast<uint64_t>(static_cast<uint8_t>(e.op))
                << 8) |
               (static_cast<uint64_t>(e.proxy) << 16) |
               (static_cast<uint64_t>(e.aux) << 32);
    }

    static void
    unpack(uint64_t v, TraceEvent& e)
    {
        e.stage = static_cast<Stage>(v & 0xff);
        e.op = static_cast<OpKind>((v >> 8) & 0xff);
        e.proxy = static_cast<uint8_t>((v >> 16) & 0xff);
        e.aux = static_cast<uint32_t>(v >> 32);
    }

    size_t mask_ = 0;
    std::unique_ptr<Slot[]> slots_;
    /// Writer-local cursor (single writer).
    uint64_t w_ = 0;
    /// Published cursor for readers.
    std::atomic<uint64_t> widx_{0};
};

} // namespace obs

#endif // MSGPROXY_OBS_TRACE_H
