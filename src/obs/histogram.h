/// \file
/// Log2-bucketed latency histogram for the runtime observability
/// layer: O(1) add on the proxy hot path, p50/p95/p99/max extraction
/// at snapshot time.
///
/// Bucket i >= 1 covers [2^(i-1), 2^i); bucket 0 holds exact zeros.
/// 64 buckets cover the full uint64 nanosecond range, so there is no
/// saturating overflow bucket to mis-read — a 9-second latency lands
/// in bucket 34 like any other sample.
///
/// Thread model: exactly one writer (the owning proxy thread);
/// readers snapshot concurrently through relaxed atomics, mirroring
/// the ProxyStats publication discipline.

#ifndef MSGPROXY_OBS_HISTOGRAM_H
#define MSGPROXY_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>

#include "util/annotations.h"
#include "util/orders.h"

namespace obs {

class Log2Hist
{
  public:
    static constexpr int kBuckets = 64;

    /// Bucket index of value v (0 for 0, else 1 + floor(log2 v),
    /// clamped to kBuckets-1).
    static int
    bucket_of(uint64_t v)
    {
        if (v == 0)
            return 0;
        int b = 64 - __builtin_clzll(v);
        return b < kBuckets ? b : kBuckets - 1;
    }

    /// Inclusive lower edge of bucket i.
    static uint64_t
    bucket_floor(int i)
    {
        return i == 0 ? 0 : uint64_t{1} << (i - 1);
    }

    /// Writer only: adds one observation.
    MSGPROXY_HOT_PATH void
    add(uint64_t v)
    {
        auto& c = counts_[bucket_of(v)];
        c.store(c.load(mp::ord::counter) + 1,
                mp::ord::counter);
        if (v > max_.load(mp::ord::counter))
            max_.store(v, mp::ord::counter);
        total_.store(total_.load(mp::ord::counter) + 1,
                     mp::ord::counter);
    }

    uint64_t
    total() const
    {
        return total_.load(mp::ord::counter);
    }

    uint64_t
    max() const
    {
        return max_.load(mp::ord::counter);
    }

    uint64_t
    bucket(int i) const
    {
        return counts_[i].load(mp::ord::counter);
    }

    /// Adds this histogram's counts into `out[kBuckets]` (merging
    /// across proxies before quantile extraction).
    void
    merge_into(uint64_t* out) const
    {
        for (int i = 0; i < kBuckets; ++i)
            out[i] += bucket(i);
    }

    /// Discards all observations (writer only, or quiescent).
    void
    reset()
    {
        for (auto& c : counts_)
            c.store(0, mp::ord::counter);
        total_.store(0, mp::ord::counter);
        max_.store(0, mp::ord::counter);
    }

  private:
    std::atomic<uint64_t> counts_[kBuckets] = {};
    std::atomic<uint64_t> total_{0};
    std::atomic<uint64_t> max_{0};
};

/// Quantile q in [0, 1] from a merged bucket array, with linear
/// interpolation inside the landing bucket. Returns 0 for an empty
/// histogram. A log2 histogram bounds the relative error of any
/// quantile by 2x; interpolation typically does much better.
inline double
quantile_from_buckets(const uint64_t* counts, double q)
{
    uint64_t total = 0;
    for (int i = 0; i < Log2Hist::kBuckets; ++i)
        total += counts[i];
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(total);
    double cum = 0.0;
    for (int i = 0; i < Log2Hist::kBuckets; ++i) {
        const auto c = static_cast<double>(counts[i]);
        if (c == 0.0)
            continue;
        if (cum + c >= target) {
            if (i == 0)
                return 0.0;
            const double lo =
                static_cast<double>(Log2Hist::bucket_floor(i));
            const double frac =
                c > 0.0 ? (target - cum) / c : 0.0;
            return lo + frac * lo; // bucket spans [lo, 2*lo)
        }
        cum += c;
    }
    // All mass below target (rounding): top nonempty bucket's upper
    // edge.
    for (int i = Log2Hist::kBuckets - 1; i >= 0; --i) {
        if (counts[i] != 0)
            return static_cast<double>(Log2Hist::bucket_floor(i)) *
                   2.0;
    }
    return 0.0;
}

} // namespace obs

#endif // MSGPROXY_OBS_HISTOGRAM_H
