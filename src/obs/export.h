/// \file
/// Exporters for the observability layer: Chrome-trace JSON (the
/// `chrome://tracing` / Perfetto "trace event" format) from merged
/// per-node stage events, plus small JSON emission helpers shared by
/// the snapshot writers (all numeric output is guarded against
/// inf/nan — invalid JSON must never reach the perf-diff tooling).

#ifndef MSGPROXY_OBS_EXPORT_H
#define MSGPROXY_OBS_EXPORT_H

#include <cmath>
#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/trace.h"

namespace obs {

/// All surviving trace events of one node, as returned by
/// Node::trace_snapshot().
struct NodeTrace
{
    int node = 0;
    std::vector<TraceEvent> events;
};

/// Guarded JSON number: non-finite doubles (empty-summary inf, 0/0
/// nan) are emitted as 0 so the document always parses; callers that
/// care set an explicit flag next to the value.
inline void
json_num(std::ostream& os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    // Round-trippable without printf %g surprises (no exponents with
    // locale-dependent commas; JSON forbids bare "1."). Integral
    // values print as integers.
    if (v == static_cast<double>(static_cast<int64_t>(v)) &&
        v > -1e15 && v < 1e15) {
        os << static_cast<int64_t>(v);
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
}

/// Writes one merged Chrome-trace JSON document:
///  - per node: a named process (pid = node id) whose threads are the
///    proxy indices, carrying instant events for every stage;
///  - per traced operation: a synthetic "ops" process (pid 1000)
///    with one thread per operation id, carrying duration slices
///    between consecutive stages — open the file in Perfetto or
///    chrome://tracing and the GET critical path reads left to
///    right: submit -> doorbell -> pickup -> wire_out ->
///    remote_handler -> reply_in -> complete.
void write_chrome_trace(std::ostream& os,
                        const std::vector<NodeTrace>& nodes);

} // namespace obs

#endif // MSGPROXY_OBS_EXPORT_H
