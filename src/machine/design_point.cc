#include "machine/design_point.h"

namespace machine {

const char*
arch_name(Arch a)
{
    switch (a) {
      case Arch::kHardware:
        return "custom-hardware";
      case Arch::kProxy:
        return "message-proxy";
      case Arch::kSyscall:
        return "system-call";
    }
    return "?";
}

DesignPoint
hw0()
{
    DesignPoint d;
    d.name = "HW0";
    d.arch = Arch::kHardware;
    d.c_miss_us = 0.5; // uniprocessor node: cheaper miss to the adapter
    d.c_update_us = 0.5;
    d.speed = 1.0;
    d.cpu_ovh_us = 1.0;
    d.adapter_ovh_us = 0.5;
    d.dma_bw_mbs = 25.0;
    d.net_lat_us = 1.0;
    d.net_bw_mbs = 175.0;
    d.pin_page_us = 0.0; // buffers permanently pinned at setup time
    d.pio_threshold = 128; // pre-pinned DMA is cheap: use it early
    return d;
}

DesignPoint
hw1()
{
    DesignPoint d;
    d.name = "HW1";
    d.arch = Arch::kHardware;
    d.c_miss_us = 1.0; // SMP node: coherence makes misses costlier
    d.c_update_us = 1.0;
    d.speed = 4.0;
    d.cpu_ovh_us = 1.5;
    d.adapter_ovh_us = 0.5;
    d.dma_bw_mbs = 150.0;
    d.net_lat_us = 1.0;
    d.net_bw_mbs = 250.0;
    d.pin_page_us = 0.0;
    d.pio_threshold = 128;
    return d;
}

DesignPoint
hw2()
{
    DesignPoint d = hw1();
    d.name = "HW2";
    d.cache_update = true;
    d.c_update_us = 0.25;
    return d;
}

DesignPoint
mp0()
{
    DesignPoint d;
    d.name = "MP0";
    d.arch = Arch::kProxy;
    d.c_miss_us = 1.0;
    d.c_update_us = 1.0;
    d.u_access_us = 0.65;
    d.v_att_us = 0.41;
    d.poll_us = 3.0;
    d.speed = 1.0; // 75 MHz PowerPC 601
    d.dma_bw_mbs = 25.0;
    d.net_lat_us = 1.0;
    d.net_bw_mbs = 175.0;
    d.pin_page_us = 10.0;
    return d;
}

DesignPoint
mp1()
{
    DesignPoint d = mp0();
    d.name = "MP1";
    d.speed = 4.0;  // next-generation proxy processor
    d.poll_us = 2.0; // faster scan loop (instruction part speeds up;
                     // the uncached probe component does not)
    d.dma_bw_mbs = 150.0;
    d.net_bw_mbs = 250.0;
    return d;
}

DesignPoint
mp2()
{
    DesignPoint d = mp1();
    d.name = "MP2";
    d.cache_update = true;
    d.c_update_us = 0.25; // producer-prefetch style direct cache update
    d.poll_us = 1.0;      // queue probes hit in the proxy's cache
    return d;
}

DesignPoint
sw1()
{
    DesignPoint d;
    d.name = "SW1";
    d.arch = Arch::kSyscall;
    d.c_miss_us = 1.0;
    d.c_update_us = 1.0;
    d.u_access_us = 0.65;
    d.speed = 4.0;
    d.cpu_ovh_us = 1.5;
    d.syscall_us = 6.5;   // aggressively optimized (cf. ~20 us in
                          // Thekkath et al. on a 25 MHz MIPS)
    d.interrupt_us = 6.5;
    d.dma_bw_mbs = 150.0;
    d.net_lat_us = 1.0;
    d.net_bw_mbs = 250.0;
    d.pin_page_us = 10.0;
    return d;
}

std::vector<DesignPoint>
all_design_points()
{
    return {hw0(), hw1(), mp0(), mp1(), mp2(), sw1()};
}

std::optional<DesignPoint>
design_point_by_name(const std::string& name)
{
    for (auto& d : all_design_points()) {
        if (d.name == name)
            return d;
    }
    return std::nullopt;
}

} // namespace machine
