/// \file
/// Machine parameterization: Table 1 cost primitives and the Table 3
/// design points of the paper.
///
/// The paper models communication cost in terms of six machine
/// primitives measured on the IBM Model G30 SMP:
///   C  time to service a cache miss            (1.0 us on the G30)
///   U  time for an uncached access to the NIC  (0.65 us)
///   V  vm_att / vm_det address-space attach    (0.41 us)
///   P  mean polling delay of the proxy loop    (3.0 us)
///   S  processor speed as a multiple of 75 MHz (instruction time 1/S)
///   L  network transit latency                 (~1 us)
/// plus bandwidth parameters (DMA engine, network link) and software
/// costs (system call, interrupt, page pinning).

#ifndef MSGPROXY_MACHINE_DESIGN_POINT_H
#define MSGPROXY_MACHINE_DESIGN_POINT_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace machine {

/// The three architectures for protected communication (Section 2).
enum class Arch {
    kHardware, ///< custom protection hardware in the network adapter
    kProxy,    ///< dedicated-processor message proxy (the paper's design)
    kSyscall   ///< system calls + interrupts through the OS kernel
};

/// Human-readable architecture name.
const char* arch_name(Arch a);

/// One column of Table 3: a complete machine parameterization.
struct DesignPoint
{
    std::string name; ///< "HW0", "HW1", "MP0", "MP1", "MP2", "SW1"
    Arch arch = Arch::kProxy;

    // ----- Table 1 primitives -----
    double c_miss_us = 1.0;   ///< C: cache-miss latency (compute <-> agent)
    double c_update_us = 1.0; ///< proxy<->compute miss with the MP2
                              ///< cache-update primitive (== c_miss_us
                              ///< when the primitive is absent)
    double u_access_us = 0.65; ///< U: uncached access to the adapter FIFO
    double v_att_us = 0.41;    ///< V: vm_att/vm_det cross-memory attach
    double poll_us = 3.0;      ///< P: mean proxy polling delay
    double speed = 1.0;        ///< S: processor speed, multiple of 75 MHz

    // ----- Table 3 parameters -----
    double cpu_ovh_us = 1.0;     ///< compute-processor submit overhead
                                 ///< (hardware/syscall designs)
    double adapter_ovh_us = 0.5; ///< hardware adapter per-packet overhead
    double dma_bw_mbs = 25.0;    ///< DMA engine bandwidth, MB/s
    double net_lat_us = 1.0;     ///< L: network transit latency
    double net_bw_mbs = 175.0;   ///< network link bandwidth, MB/s
    double syscall_us = 6.5;     ///< system-call overhead (SW design)
    double interrupt_us = 6.5;   ///< interrupt overhead (SW design)
    double pin_page_us = 10.0;   ///< dynamic page-pin cost (0: pre-pinned)

    // ----- transfer-mechanism constants -----
    bool cache_update = false;   ///< MP2 direct cache-update primitive
    size_t pio_threshold = 512;  ///< bytes; larger transfers use DMA
    size_t page_bytes = 4096;    ///< pinning granularity
    size_t packet_bytes = 4096;  ///< network MTU (per-packet pipelining)
    size_t line_bytes = 32;      ///< cache line (PIO moves line-at-a-time)

    /// Instruction time for `insns` abstract instruction units
    /// (the "0.5/S"-style terms of Table 2).
    double insn(double units) const { return units / speed; }

    /// Cache-miss cost between a compute processor and the
    /// communication agent, honouring the MP2 cache-update primitive.
    double
    proxy_miss() const
    {
        return cache_update ? c_update_us : c_miss_us;
    }

    /// Number of cache lines covering `n` bytes (at least 1 for n>0).
    size_t
    lines(size_t n) const
    {
        return (n + line_bytes - 1) / line_bytes;
    }

    /// Number of pages covering `n` bytes.
    size_t
    pages(size_t n) const
    {
        return (n + page_bytes - 1) / page_bytes;
    }

    /// Microseconds to move `n` bytes at `mbs` MB/s (MB = 1e6 bytes).
    static double
    xfer_us(size_t n, double mbs)
    {
        return static_cast<double>(n) / mbs;
    }
};

/// HW0: custom hardware, uniprocessor nodes, current-generation
/// technology (SHRIMP-class).
DesignPoint hw0();

/// HW1: custom hardware, SMP nodes, next-generation parameters
/// (higher DMA and network bandwidth, higher SMP cache-miss latency).
DesignPoint hw1();

/// HW2 (extension, Section 7): HW1 plus the direct cache-update
/// primitive — the paper notes "custom hardware performance may also
/// be enhanced by this primitive". Not part of the paper's Table 3;
/// used by bench_ablation_cache_update.
DesignPoint hw2();

/// MP0: message proxy on current-generation hardware (the G30
/// implementation of Section 4).
DesignPoint mp0();

/// MP1: message proxy on next-generation hardware (faster proxy
/// processor, higher DMA and network bandwidth).
DesignPoint mp1();

/// MP2: MP1 plus the direct cache-update primitive (0.25 us misses
/// between the message proxy and compute processors).
DesignPoint mp2();

/// SW1: system-call based communication with aggressively optimized
/// 6.5 us system calls and interrupts, next-generation hardware.
DesignPoint sw1();

/// All six design points in Table 3 column order.
std::vector<DesignPoint> all_design_points();

/// Looks up a design point by name (case-sensitive).
std::optional<DesignPoint> design_point_by_name(const std::string& name);

} // namespace machine

#endif // MSGPROXY_MACHINE_DESIGN_POINT_H
