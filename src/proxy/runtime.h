/// \file
/// The real (host-thread) message-proxy runtime: the Section 4
/// implementation of the paper, realized with std::thread and the
/// lock-free SPSC queues of spsc/ring_queue.h.
///
/// One Node models one SMP: a set of user endpoints plus one or more
/// dedicated proxy threads that poll the endpoints' command queues
/// and the inter-node channels round-robin, exactly like Figure 5 of
/// the paper. Users submit PUT/GET/ENQ commands through their private
/// command queues; the proxy validates segment permissions, moves the
/// data (zero-copy between registered segments), and signals
/// completion through atomic flags. The implementation is lock-free
/// end-to-end, interrupt-free, and protected: a user can only reach
/// remote memory through segments the owner registered for remote
/// access.
///
/// Multi-proxy sharding (Section 5.4's "multiple message proxies may
/// help", mirroring the simulator's `SystemConfig::proxies_per_node`):
/// a Node runs `NodeConfig::num_proxies` proxy threads. Endpoints
/// start partitioned with the simulator's rule (proxy = endpoint id
/// mod num_proxies) but the binding is an indirection table
/// (`shard_map_`) and per-endpoint ownership can migrate between
/// proxies at runtime (Node::migrate_endpoint, or automatically via
/// NodeConfig::Rebalance work stealing). Remote queues stay static
/// (proxy = qid mod num_proxies). Every SPSC ring end keeps exactly
/// one owner at a time: each (sending proxy, receiving proxy) pair of
/// connected nodes gets its own packet channel, so two proxies never
/// contend on one ring end, and each proxy has a private CCB table,
/// command bit-vector, and deferred-request queue. Proxy threads can
/// be pinned to cores and their hot state placed NUMA-locally via
/// NodeConfig::Placement (see DESIGN.md "Placement & load
/// balancing").
///
/// Remote addresses are (node, segment, offset) triples, mirroring
/// the paper's asid-relative addressing.

#ifndef MSGPROXY_PROXY_RUNTIME_H
#define MSGPROXY_PROXY_RUNTIME_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "check/ownership.h"
#include "proxy/doorbell.h"
#include "util/annotations.h"
#include "util/orders.h"
#include "net/fault.h"
#include "net/fts.h"
#include "net/reliable.h"
#include "net/transport.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "spsc/ring_queue.h"

namespace proxy {

/// Completion flag: the runtime increments it with release ordering;
/// users poll or spin with acquire ordering.
using Flag = std::atomic<uint64_t>;

/// How a proxy discovers non-empty command queues.
enum class PollMode {
    kScanAll,  ///< probe every queue head each loop (Figure 5)
    kBitVector ///< cooperative hierarchical doorbell bitmap:
               ///< producers set their endpoint's exact leaf bit on
               ///< enqueue and propagate summary bits upward, so an
               ///< idle proxy probes all its queues in one load of
               ///< the top summary and a wakeup visits only
               ///< endpoints that actually posted (the Section 4.1
               ///< acceleration, scaled past 64 endpoints — see
               ///< proxy/doorbell.h)
};

/// Idle-backoff parameters of the proxy loop (and of flag_wait_ge):
/// a polling thread walks spin -> cpu-relax (`pause`) -> yield as it
/// accumulates idle iterations, and resets on any progress. The
/// default constructor picks hardware-aware values: on a
/// single-hardware-thread host both budgets are zero (yield
/// immediately — spinning there only steals the producer's
/// timeslice), otherwise a short spin and a pause window precede the
/// yield stage.
struct PollParams
{
    /// Hardware-aware defaults (see above).
    PollParams();

    constexpr PollParams(uint32_t spin, uint32_t pause,
                         uint32_t sleep_after = 0,
                         uint32_t sleep = 0)
        : spin_iters(spin), pause_iters(pause),
          yield_iters_before_sleep(sleep_after), sleep_us(sleep)
    {
    }

    /// Stage 1: idle iterations re-polled in a tight loop.
    uint32_t spin_iters;
    /// Stage 2: idle iterations separated by a CPU-relax hint.
    uint32_t pause_iters;
    /// Stage 3 is yield. Optionally, after this many yields a fourth
    /// stage sleeps sleep_us between polls so a long-idle proxy truly
    /// stops burning its core. 0 (the default) disables sleeping.
    uint32_t yield_iters_before_sleep;
    uint32_t sleep_us;
};

/// One polling thread's backoff state machine over PollParams.
class Backoff
{
  public:
    explicit Backoff(const PollParams& p) : p_(p) {}

    /// Progress was made: rearm the spin stage.
    MSGPROXY_HOT_PATH void reset() { n_ = 0; }

    /// One idle iteration: spin, pause, yield, or sleep per the
    /// accumulated idle count. Hot-exempt: the stage-4 sleep is
    /// the sanctioned blocking point of a long-idle poller.
    MSGPROXY_HOT_EXEMPT void idle();

    /// True when past the spin and pause stages (i.e. yielding).
    bool
    yielding() const
    {
        return n_ > p_.spin_iters + p_.pause_iters;
    }

  private:
    PollParams p_;
    uint64_t n_ = 0;
};

/// Spin until flag >= v, using the same spin/pause/yield backoff
/// policy as the proxy loop (pp defaults to the hardware-aware
/// PollParams). The runtime's analogue of rma::Ctx::wait_ge.
MSGPROXY_HOT_PATH void flag_wait_ge(const Flag& f, uint64_t v,
                  const PollParams& pp = PollParams());

/// A communication command as it sits in a user command queue.
struct Command
{
    enum class Op : uint8_t {
        kNop,
        kPut,
        kGet,
        kEnq,   ///< message to an endpoint's receive ring
        kRqEnq, ///< append to a proxy-managed remote queue
        kRqDeq  ///< dequeue from a proxy-managed remote queue
    };

    /// ENQ payloads are copied inline at submission (eager-send
    /// semantics for small messages); PUT sources are referenced and
    /// must stay valid until lsync fires (zero-copy semantics).
    static constexpr uint32_t kMaxEnqBytes = 256;

    Op op = Op::kNop;
    int32_t dst_node = -1;
    int32_t dst_user = -1;  ///< ENQ: receiving endpoint on dst_node
    uint16_t dst_seg = 0;   ///< PUT/GET: target segment id
    uint64_t dst_off = 0;   ///< PUT/GET: offset within the segment
    const void* src = nullptr; ///< PUT: local source (referenced)
    void* dst = nullptr;       ///< GET: local destination
    uint32_t len = 0;
    Flag* lsync = nullptr;
    Flag* rsync = nullptr;
    // ---- observability (zero when tracing is off) ----
    uint64_t tid = 0;       ///< trace id (node-salted, 0: untraced)
    uint64_t t_submit = 0;  ///< submit() entry timestamp
    uint64_t t_enqueue = 0; ///< just before cmdq push / doorbell
    uint8_t inline_data[kMaxEnqBytes]; ///< ENQ payload (copied)
};

/// Result of submitting a command to an endpoint's command queue.
/// Distinguishes the retryable condition (kQueueFull) from caller
/// errors, which the old bare-bool return conflated. Converts to
/// bool in boolean contexts (true == accepted), so retry loops read
/// `while (!ep.put(...))` exactly as before.
class SubmitStatus
{
  public:
    enum Code : uint8_t {
        kOk = 0,    ///< command accepted by the proxy
        kQueueFull, ///< command queue full: back off and retry
        kTooLarge,  ///< inline payload exceeds Command::kMaxEnqBytes
        kBadTarget, ///< destination node/endpoint/queue id invalid
        /// The reliability layer exhausted max_retries retransmitting
        /// to this node and declared it dead; new commands toward it
        /// are refused instead of wedging in a window that will never
        /// drain.
        kPeerUnreachable,
        /// The endpoint was retired (Node::retire_endpoint): its
        /// remaining backlog drains, but no new commands are
        /// accepted while it awaits reclamation.
        kRetired
    };

    constexpr SubmitStatus(Code code) : code_(code) {}

    /// True when the command was accepted.
    constexpr explicit operator bool() const { return code_ == kOk; }

    constexpr Code code() const { return code_; }

    /// Human-readable code name ("kOk", "kQueueFull", ...).
    const char* name() const;

    friend constexpr bool
    operator==(SubmitStatus a, SubmitStatus b)
    {
        return a.code_ == b.code_;
    }

  private:
    Code code_;
};

std::ostream& operator<<(std::ostream& os, SubmitStatus s);

/// Per-proxy runtime counters. Atomic so user threads can observe
/// them while the proxy runs; each counter is written by exactly one
/// proxy thread.
struct ProxyStats
{
    std::atomic<uint64_t> commands{0}; ///< commands consumed
    std::atomic<uint64_t> packets_in{0};
    std::atomic<uint64_t> packets_out{0};
    std::atomic<uint64_t> faults{0};    ///< violations suppressed
    std::atomic<uint64_t> enq_drops{0}; ///< receive-ring overflows
    std::atomic<uint64_t> polls{0};     ///< proxy loop iterations
    /// Transitions from making progress to finding nothing to do
    /// (i.e. entries into the backoff state machine).
    std::atomic<uint64_t> idle_transitions{0};
    /// Wire packets served from this proxy's slab pool.
    std::atomic<uint64_t> pool_hits{0};
    /// Wire packets that fell back to the heap (pool empty). Zero in
    /// steady state; a nonzero value means the pool is undersized for
    /// the offered load, not an error.
    std::atomic<uint64_t> pool_misses{0};
    /// Per-fragment acknowledgments saved by carrying the completion
    /// cookie only on the final fragment of a multi-fragment
    /// PUT/GET: += (fragments - 1) per such command.
    std::atomic<uint64_t> acks_coalesced{0};
    /// Largest number of work items (commands + packets) handled in
    /// one loop iteration: how deep the burst drains actually run.
    std::atomic<uint64_t> batch_max{0};
    /// Inbound wire packets this proxy discarded (checksum failure,
    /// sequence gap, or duplicate — each also counted below).
    std::atomic<uint64_t> pkts_dropped{0};
    /// Unacked window packets re-pushed after an RTO expiry.
    std::atomic<uint64_t> pkts_retransmitted{0};
    /// Inbound packets whose sequence number was already delivered.
    std::atomic<uint64_t> pkts_duplicate{0};
    /// Standalone kAck packets emitted (piggybacked acks are free and
    /// not counted).
    std::atomic<uint64_t> acks_sent{0};
    /// Inbound packets failing the header checksum.
    std::atomic<uint64_t> crc_fail{0};
    /// Pooled packets recycled back into a slab (by any path). After
    /// quiescence, pool_hits summed over communicating nodes equals
    /// this sum — the no-leak invariant the chaos suite asserts.
    std::atomic<uint64_t> pool_returns{0};
    /// Heap-fallback packets deleted. Pairs with pool_misses the same
    /// way pool_returns pairs with pool_hits.
    std::atomic<uint64_t> heap_frees{0};
    /// Loop iterations that made progress (drained a command, packet,
    /// or link event). busy_polls / polls is the utilization gauge
    /// that stats_snapshot() exposes per proxy.
    std::atomic<uint64_t> busy_polls{0};
    /// Endpoint ownership handoffs this proxy executed (as the old
    /// owner): explicit migrate_endpoint() orders plus rebalancer
    /// steals.
    std::atomic<uint64_t> migrations{0};
    /// Packets re-aimed at another local proxy because they arrived
    /// at a stale owner during migration (ENQ forwards).
    std::atomic<uint64_t> pkts_forwarded{0};
    /// Completion-flag increments coalesced by the cross-proxy
    /// completion batcher (deferred then flushed in one pass).
    std::atomic<uint64_t> completions_batched{0};
    /// Standalone kHeartbeat probes emitted (idle links only — a
    /// link moving data never pays for one).
    std::atomic<uint64_t> heartbeats_sent{0};
    /// Commands re-homed to a failover target because their original
    /// destination was declared dead.
    std::atomic<uint64_t> failovers{0};
    /// Owned-endpoint visits delivered by the doorbell harvest
    /// (consume() leaf hits routed to this proxy).
    std::atomic<uint64_t> db_wakeups{0};
    /// Doorbell-harvest visits that drained zero commands (benign:
    /// the backlog was already taken by a carry revisit or a
    /// migration courtesy drain).
    std::atomic<uint64_t> db_false_wakeups{0};
    /// Doorbell announcements this proxy re-aimed at the live owner
    /// after consuming a bit for an endpoint it no longer owns
    /// (counted only when the re-ring actually propagated — the
    /// leaf dedup absorbs the rest, so migration backlog cannot
    /// generate doorbell storms).
    std::atomic<uint64_t> db_forwards{0};
    /// Endpoints carried to the next loop iteration with exact ids
    /// (burst/fairness budget cut them off mid-backlog).
    std::atomic<uint64_t> db_carries{0};
    /// Carry revisits that found an empty command queue. Exact-id
    /// carries only ever name endpoints with verified backlog, so
    /// this stays zero — the counter proves the aliased re-walks of
    /// the flat 64-bit mask are gone.
    std::atomic<uint64_t> db_carry_empty{0};
};

/// Node-wide counter snapshot: the sum of every proxy's ProxyStats
/// at the instant Node::stats() was called (approximate while the
/// proxies run).
struct NodeStats
{
    uint64_t commands = 0;
    uint64_t packets_in = 0;
    uint64_t packets_out = 0;
    uint64_t faults = 0;
    uint64_t enq_drops = 0;
    uint64_t polls = 0;
    uint64_t idle_transitions = 0;
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t acks_coalesced = 0;
    /// Max (not sum) across proxies: deepest single-loop burst.
    uint64_t batch_max = 0;
    uint64_t pkts_dropped = 0;
    uint64_t pkts_retransmitted = 0;
    uint64_t pkts_duplicate = 0;
    uint64_t acks_sent = 0;
    uint64_t crc_fail = 0;
    uint64_t pool_returns = 0;
    uint64_t heap_frees = 0;
    uint64_t busy_polls = 0;
    uint64_t migrations = 0;
    uint64_t pkts_forwarded = 0;
    uint64_t completions_batched = 0;
    uint64_t heartbeats_sent = 0;
    uint64_t failovers = 0;
    uint64_t db_wakeups = 0;
    uint64_t db_false_wakeups = 0;
    uint64_t db_forwards = 0;
    uint64_t db_carries = 0;
    uint64_t db_carry_empty = 0;
};

/// Completion-latency distribution of one op kind, extracted from
/// the per-proxy log2 histograms at snapshot time. One-way ops
/// (PUT/ENQ/RQ_ENQ) measure submit -> last fragment on the wire;
/// request/reply ops (GET/RQ_DEQ) measure submit -> completion (full
/// round trip), matching the paper's Table 2 framing.
struct OpLatency
{
    const char* op = "";
    uint64_t count = 0;
    uint64_t max_ns = 0;
    double p50_ns = 0.0;
    double p95_ns = 0.0;
    double p99_ns = 0.0;
    /// Merged log2 buckets (obs::Log2Hist layout) for re-bucketing
    /// or custom quantiles downstream.
    uint64_t buckets[obs::Log2Hist::kBuckets] = {};
};

/// Everything Node::stats_snapshot() captures in one call: summed and
/// per-proxy counters, per-op latency histograms, batch-occupancy
/// distribution, and trace-ring accounting. Serialized by
/// Node::dump_json().
struct NodeSnapshot
{
    int node = 0;
    uint64_t ts_ns = 0; ///< capture time (steady_clock)
    bool obs_enabled = false;
    NodeStats totals;
    std::vector<NodeStats> per_proxy;
    /// One entry per obs::OpKind with nonzero count.
    std::vector<OpLatency> op_latency;
    /// Work items handled per non-empty loop iteration (queue-depth
    /// proxy: how much backlog each wakeup found).
    OpLatency batch;
    uint64_t trace_recorded = 0;
    uint64_t trace_drops = 0;
    size_t trace_capacity = 0;
    /// Per-proxy busy-loop fraction (busy_polls / polls, 0 when the
    /// proxy has not polled yet). Load imbalance in one glance.
    std::vector<double> utilization;
    /// Per-proxy count of endpoints currently owned (shard_map scan
    /// at snapshot time; approximate while migrations are in flight).
    std::vector<uint32_t> endpoints_owned;
    /// peer_state[n]: net::PeerState of node n as this node sees it
    /// (kAlive for unconnected slots).
    std::vector<uint8_t> peer_state;
    /// Doorbell hierarchy accounting, summed across proxies:
    /// rings[l] / consumes[l] are the 0->1 announcements and the
    /// bits harvested at level l. An idle node's consumes stay flat
    /// while polls climb — the O(1) idle-probe proof the
    /// endpoint-sweep bench gates on.
    struct DoorbellStats
    {
        int levels = 0;
        std::vector<uint64_t> rings;
        std::vector<uint64_t> consumes;
    };
    DoorbellStats doorbell;
};

/// Node construction parameters, mirroring rma::SystemConfig for the
/// simulated cluster. Aggregate-initializable:
///   proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
struct NodeConfig
{
    int id = 0;
    PollMode poll_mode = PollMode::kBitVector;
    /// Proxy threads on this node (1..64). Endpoints and remote
    /// queues start sharded across them with the simulator's
    /// partitioning rule (proxy = id mod num_proxies); endpoint
    /// ownership can then migrate (see Rebalance and
    /// Node::migrate_endpoint).
    int num_proxies = 1;
    /// Endpoint-slot capacity of this node: the doorbell bitmaps,
    /// shard map, and endpoint table are sized for this many ids at
    /// construction so create_endpoint() stays legal while the
    /// proxies run (lazy registration; retired ids are reclaimed and
    /// reused). Creation beyond the capacity aborts. The default
    /// keeps the doorbell at two levels (one extra release RMW per
    /// announcement vs the flat mask); endpoint-scale workloads set
    /// 1<<20.
    size_t max_endpoints = 4096;
    /// Fairness budget of the proxy loop: at most this many commands
    /// drained per iteration across all owned endpoints, so one hot
    /// endpoint (or a dense wakeup) cannot starve packet service or
    /// its neighbors — cut-off endpoints carry to the next iteration
    /// by exact id. 0 disables the cap (per-endpoint cmd_burst still
    /// applies).
    uint32_t loop_cmd_budget = 1024;
    /// Per-endpoint command-queue depth in entries (rounded up to a
    /// power of two).
    size_t cmd_queue_depth = 256;
    /// Per-endpoint receive-ring capacity in bytes (rounded up to a
    /// power of two).
    size_t recv_ring_bytes = 64 * 1024;
    /// Per-channel wire-packet ring depth in entries (rounded up to
    /// a power of two). One channel exists per (sending proxy,
    /// receiving proxy) pair and direction.
    size_t channel_depth = 1024;
    /// Per-proxy packet-pool capacity in pooled kMtu packets. 0
    /// disables pooling (every packet heap-allocated, counted as a
    /// pool miss). Sized > channel_depth by default so a full
    /// outbound ring plus in-flight deferrals still hit the pool.
    size_t packet_pool_size = 2048;
    /// Burst budgets of the proxy loop: commands drained per
    /// endpoint and packets drained per channel before the loop
    /// re-polls its other sources.
    uint32_t cmd_burst = 64;
    uint32_t pkt_burst = 32;
    /// Idle-backoff policy of this node's proxy loops.
    PollParams poll{};
    /// Reliability layer of the inter-node wire path (sequencing,
    /// acks, retransmission). Both ends of a connect() must agree on
    /// `reliability.enabled`. Intra-node loopback channels are plain
    /// shared memory and never sequenced.
    net::ReliabilityParams reliability{};
    /// Deterministic fault injection on every inter-node channel this
    /// node's proxies produce (test builds; defaults to all-zero
    /// rates, i.e. the paper's lossless fabric).
    net::FaultPlan fault_plan{};
    /// Observability: stage tracing + latency histograms (off by
    /// default; the disabled cost is one relaxed load + branch per
    /// command/packet).
    obs::Params obs{};
    /// Which wire backend carries this node's inter-node links:
    /// kInProc (SPSC channel pairs in shared memory, the default and
    /// the zero-regression hot path) or kSocket (TCP / Unix-domain
    /// stream sockets between proxies). listen()/connect() addresses
    /// must match the selected backend's schemes.
    net::TransportKind transport = net::TransportKind::kInProc;
    /// Where proxy threads run and where their hot state lives.
    struct Placement
    {
        enum class Pin : uint8_t
        {
            kNone,    ///< no affinity (the historical behavior)
            kAuto,    ///< NUMA-grouped CPUs from topo::reserve_cpus
            kExplicit ///< pin proxy i to proxy_cpus[i]
        };
        Pin pin = Pin::kNone;
        /// kExplicit: CPU per proxy (proxy i -> proxy_cpus[i % size]).
        std::vector<int> proxy_cpus;
        /// Allocate each proxy's packet slab from its own thread
        /// (first-touch places the pages on the proxy's NUMA node
        /// when pinned). Costs one deferred allocation per proxy at
        /// startup; no effect on the steady-state path.
        bool numa_first_touch = true;
    };
    Placement placement{};
    /// Slow-path work stealing: proxy 0 periodically compares
    /// per-proxy drain rates and migrates the hottest endpoint off an
    /// overloaded proxy. Off by default (explicit migrate_endpoint()
    /// always works regardless).
    struct Rebalance
    {
        bool enabled = false;
        /// Rebalance cadence in proxy-0 loop iterations.
        uint32_t window_polls = 4096;
        /// Steal only when busiest load >= min_ratio * coolest load.
        double min_ratio = 2.0;
        /// ...and the busiest proxy drained at least this many
        /// commands in the window (don't shuffle idle nodes).
        uint64_t min_cmds = 256;
        /// Endpoint moves per rebalance pass.
        uint32_t max_moves = 1;
    };
    Rebalance rebalance{};
    /// Cross-proxy completion batching: a proxy defers up to this
    /// many user-visible completion-flag increments per loop
    /// iteration and flushes them in one pass (mirrors pkt_burst for
    /// the ack path). 0 completes singly, 1..8 batches; clamped to 8.
    uint32_t completion_flush = 8;
    /// Crash-fault tolerance: heartbeat failure detection (off by
    /// default — the zero-regression path) plus the optional
    /// endpoint-failover target. See net/fts.h and DESIGN.md
    /// "Failure detection & failover".
    net::FtsParams fts{};
    /// Incarnation number of this node, exchanged in the wiring
    /// handshake. A restarted replacement node must rejoin with a
    /// strictly higher epoch so peers distinguish its fresh sequence
    /// space from stale pre-crash wiring.
    uint64_t epoch = 1;
};

class Node;

/// A user process's interface to its node's message proxy.
///
/// Thread model: exactly one user thread may operate on an Endpoint
/// (its command queue is single-producer; its receive ring is
/// single-consumer).
///
/// The submission API mirrors rma::Ctx: put/get with lsync/rsync
/// completion flags, remote-queue enq/deq; Ctx::enq/deq on (asid,
/// qid) correspond to rq_enq/rq_deq here, while Endpoint::enq posts
/// to another endpoint's receive ring. Where Ctx::wait_ge blocks a
/// simulated thread, the runtime offers proxy::flag_wait_ge.
class Endpoint
{
  public:
    /// Registers `len` bytes at `base` as segment usable by remote
    /// nodes when `remote_access` is true. Returns the segment id
    /// (node-wide address space, mirroring the paper's asid model).
    uint16_t register_segment(void* base, size_t len,
                              bool remote_access = true);

    /// PUT: copy `len` bytes from src to (node, segment, offset).
    /// lsync increments when the command and data have been handed to
    /// the wire (the source buffer is then reusable); rsync is a flag
    /// in the destination node's address space, incremented there
    /// once the data is in place. The source must stay valid until
    /// lsync fires.
    MSGPROXY_HOT_PATH SubmitStatus put(const void* src, int dst_node, uint16_t dst_seg,
                     uint64_t dst_off, uint32_t len,
                     Flag* lsync = nullptr, Flag* rsync = nullptr);

    /// GET: copy `len` bytes from (node, segment, offset) to dst.
    /// lsync increments when the data has been stored locally.
    MSGPROXY_HOT_PATH SubmitStatus get(void* dst, int dst_node, uint16_t dst_seg,
                     uint64_t dst_off, uint32_t len,
                     Flag* lsync = nullptr);

    /// ENQ to an endpoint: append an n-byte message to endpoint
    /// `dst_user`'s receive ring on `dst_node`. The payload (at most
    /// Command::kMaxEnqBytes) is copied at submission, so `data` is
    /// immediately reusable. lsync increments when handed to the
    /// wire.
    MSGPROXY_HOT_PATH SubmitStatus enq(const void* data, uint32_t len, int dst_node,
                     int dst_user, Flag* lsync = nullptr);

    /// Non-blocking receive from this endpoint's message ring.
    MSGPROXY_HOT_PATH bool try_recv(std::vector<uint8_t>& out);

    // ----- proxy-managed remote queues (the paper's RQ primitive) ---

    /// ENQ to a remote queue: atomically append an n-byte message to
    /// queue `qid` on `dst_node` (rma::Ctx::enq's counterpart). lsync
    /// increments when handed to the wire. Payload is copied at
    /// submission (max Command::kMaxEnqBytes).
    MSGPROXY_HOT_PATH SubmitStatus rq_enq(const void* data, uint32_t len, int dst_node,
                        int qid, Flag* lsync = nullptr);

    /// DEQ: dequeue the head message of queue `qid` on `dst_node`
    /// into `dst` (up to `max` bytes; rma::Ctx::deq's counterpart).
    /// When the reply arrives, lsync is incremented by 1 + bytes
    /// received (exactly 1 if the queue was empty).
    MSGPROXY_HOT_PATH SubmitStatus rq_deq(void* dst, uint32_t max, int dst_node, int qid,
                        Flag* lsync);

    /// Endpoint index on its node.
    int id() const { return id_; }

    /// Owning node id.
    int node() const;

    /// Index of the proxy thread that currently serves this endpoint
    /// (can change via Node::migrate_endpoint / work stealing).
    int proxy() const;

    /// Diagnostic flag bumped on protection faults observed locally.
    Flag& fault_flag() { return faults_; }

    /// True once Node::retire_endpoint was called on this endpoint:
    /// new submits return SubmitStatus::kRetired while the remaining
    /// backlog drains toward reclamation.
    bool retired() const { return retired_.load(mp::ord::observe); }

    /// Ownership-lint escape hatch (MSGPROXY_CHECK_OWNERSHIP builds):
    /// unbinds both SPSC roles so the endpoint can be handed to
    /// another thread. Call only while no operation is in flight.
    void
    release_ownership()
    {
        cmd_owner_.release();
        recv_owner_.release();
    }

  private:
    friend class Node;

    Endpoint(Node& node, int id, size_t cmd_depth, size_t recv_bytes)
        : node_(node), id_(id), cmdq_(cmd_depth), recvq_(recv_bytes)
    {
    }

    /// Validates the target, pushes the command, and notifies the
    /// owning proxy's bit vector.
    MSGPROXY_HOT_PATH SubmitStatus submit(Command&& c);

    Node& node_;
    int id_;
    spsc::DynRingQueue<Command> cmdq_;
    spsc::DynMsgRing recvq_;
    /// Commands accepted into cmdq_ (single-writer: the user thread;
    /// relaxed load+store). posted_ - drained_ approximates the
    /// endpoint's backlog without touching the ring's private cursors
    /// — the doorbell forward rule and the rebalancer both read it
    /// from other threads.
    std::atomic<uint64_t> posted_{0};
    /// Commands consumed from cmdq_ (single-writer: the owning proxy
    /// — unique by the shard handoff protocol; relaxed load+store).
    std::atomic<uint64_t> drained_{0};
    /// Set by Node::retire_endpoint (under ep_mu_); submit refuses
    /// new commands once observed. The slot is reclaimed when the
    /// backlog drains and every proxy acknowledged the generation
    /// (see Node::reclaim_endpoints).
    std::atomic<bool> retired_{false};
    Flag faults_{0};
    /// Lint: the one user thread allowed to produce into cmdq_.
    check::ThreadOwner cmd_owner_;
    /// Lint: the one user thread allowed to consume recvq_.
    check::ThreadOwner recv_owner_;
};

/// One simulated SMP node with one or more dedicated proxy threads.
/// (Privately a net::TransportHost: the transport calls back into
/// the node as links are wired.)
class Node : private net::TransportHost
{
  public:
    /// Back-compat alias: the poll-mode enum now lives at namespace
    /// scope so NodeConfig can name it.
    using PollMode = proxy::PollMode;

    /// Creates a node from its configuration. Call connect() to wire
    /// nodes together, then start() to launch the proxies.
    MSGPROXY_QUIESCENT explicit Node(const NodeConfig& cfg);

    MSGPROXY_QUIESCENT ~Node();

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /// Creates a user endpoint — legal before or after start()
    /// (lazy registration: the slot table, shard map, and doorbells
    /// are pre-sized to cfg.max_endpoints, so a running proxy picks
    /// the new endpoint up through its published slot; creation
    /// beyond the capacity aborts). Endpoint id starts on proxy
    /// id mod num_proxies; ownership can migrate later. Retired ids
    /// whose reclamation completed are reused.
    Endpoint& create_endpoint();

    /// Retires an endpoint: new submits return kRetired, the owning
    /// proxy drains the remaining backlog, and once it has and every
    /// proxy acknowledged the retirement generation the slot is
    /// reclaimed for reuse (epoch-based: proxies never scan dead
    /// slots, and a slot is never freed while any proxy could still
    /// hold its pointer). The caller must be done operating on the
    /// endpoint (its reference dies here); in-flight traffic toward
    /// it is dropped (enq_drops) once the slot empties. Idempotent;
    /// any thread.
    void retire_endpoint(Endpoint& ep);

    /// Opportunistic reclamation pass (also run by create_endpoint):
    /// frees retired endpoints whose backlog drained and whose
    /// generation every proxy acknowledged. Returns the number of
    /// slots reclaimed. Any thread.
    size_t reclaim_endpoints();

    /// Live endpoints (created minus reclaimed). Approximate while
    /// creations race; any thread.
    size_t endpoint_count() const;

    /// Current owning proxy of endpoint `ep` — the shard_map read
    /// (sized cfg.max_endpoints at construction; out-of-range ids
    /// fall back to the static rule). Approximate from non-proxy
    /// threads while a migration is in flight; every stale answer is
    /// corrected by the doorbell forward rule.
    MSGPROXY_HOT_PATH int
    endpoint_owner(int ep) const
    {
        const size_t e = static_cast<size_t>(ep);
        if (e >= shard_map_size_)
            return ep % cfg_.num_proxies;
        return static_cast<int>(shard_map_[e].load(mp::ord::observe));
    }

    /// Asynchronously moves endpoint `ep` to proxy `to`: posts a
    /// migration order to the current owner, which quiesces the
    /// endpoint (drains a bounded burst of its in-flight commands),
    /// publishes the new owner, and re-aims the doorbell. Safe while
    /// traffic is in flight from any thread; a no-op when `to`
    /// already owns `ep` or either index is out of range. Requires a
    /// running node (orders posted while stopped are consumed at the
    /// next start()).
    void migrate_endpoint(int ep, int to);

    /// Creates a proxy-managed remote queue on this node (strictly
    /// before start(): the queue table has no lazy-registration path
    /// and a call on a running node fails loudly — MP_CHECK abort);
    /// returns its id. Any endpoint on any connected node may
    /// rq_enq/rq_deq it; the owning proxy (qid mod num_proxies)
    /// serializes access — this is the paper's Remote Queue with one
    /// proxy as the single trusted manipulator of the queue pointers.
    MSGPROXY_QUIESCENT int create_queue();

    /// Binds this node's transport (NodeConfig::transport) to `addr`
    /// and accepts peer connections until destruction. Addresses:
    /// "inproc://<name>" (kInProc), "unix://<path>" or
    /// "tcp://<ipv4>:<port>" (kSocket). Call before start().
    MSGPROXY_QUIESCENT void listen(const std::string& addr);

    /// Connects to a peer node's listen address (before start() on
    /// either node). Synchronous: on return the full (local proxies
    /// x peer proxies) link matrix exists on both sides. Each
    /// (sending proxy, receiving proxy) pair gets its own
    /// full-duplex framed packet link, so no link end is ever
    /// shared between proxies.
    MSGPROXY_QUIESCENT void connect(const std::string& addr);

    /// Two-node in-process wiring shim over the transport API.
    [[deprecated("use a.listen(\"inproc://name\") + "
                 "b.connect(\"inproc://name\") — see "
                 "net/transport.h")]] MSGPROXY_QUIESCENT static void
    connect(Node& a, Node& b);

    /// Launches the proxy threads.
    MSGPROXY_QUIESCENT void start();

    /// Stops the proxy threads (also called by the destructor).
    MSGPROXY_QUIESCENT void stop();

    /// Node id.
    int id() const { return cfg_.id; }

    /// Number of proxy threads.
    int num_proxies() const { return cfg_.num_proxies; }

    /// This node's configuration.
    const NodeConfig& config() const { return cfg_; }

    /// Node-wide counter snapshot (readable while running;
    /// approximate): the sum over all proxies.
    NodeStats stats() const;

    /// Counters of one proxy thread (readable while running).
    const ProxyStats& proxy_stats(int proxy) const;

    /// True when the reliability layer declared `node` dead (a link
    /// toward it exhausted max_retries). New submits toward it return
    /// SubmitStatus::kPeerUnreachable. Readable from any thread.
    bool peer_unreachable(int node) const;

    // ----- crash-fault tolerance (NodeConfig::fts) -----------------

    /// The failure detector's verdict on `node`: kAlive until
    /// heartbeats go missing, kSuspect after fts.suspect_after
    /// silent intervals, kDead after fts.dead_after (or on any of
    /// the other death paths — retry exhaustion, socket EOF).
    /// Readable from any thread; unconnected nodes report kAlive.
    net::PeerState peer_state(int node) const;

    /// Registers a callback fired on peer state transitions
    /// (alive->suspect, suspect->alive, *->dead). Called from a
    /// proxy thread with no node locks held — keep it cheap and do
    /// not call back into the node. Set before start().
    MSGPROXY_QUIESCENT void
    set_peer_callback(std::function<void(int, net::PeerState)> cb)
    {
        peer_cb_ = std::move(cb);
    }

    /// Declares `node` dead now (all three organic death paths —
    /// RTO exhaustion, socket EOF, heartbeat timeout — funnel here,
    /// and tests may force it). Idempotent; thread-safe. Every proxy
    /// kills its links toward the peer and completes pending CCBs
    /// with kPeerUnreachable exactly once.
    void declare_peer_dead(int node);

    /// The node new submits aimed at dead peer `node` are re-homed
    /// to (-1: none configured / peer not dead, fail instead).
    int failover_target(int node) const;

    /// Chaos hook: when `on`, every link toward `node` silently
    /// drops outbound packets (both fresh sends and retransmits), so
    /// the reliability layer escalates to link death — a one-sided
    /// network partition. Thread-safe; a no-op for unconnected
    /// peers. Partitions are sticky until declared dead or healed.
    void set_peer_blackhole(int node, bool on);

    /// Crash-restart recovery, quiescent only (call between stop()
    /// and the next start()): reclaims every packet this node still
    /// holds in custody on links toward `node`, abandons their send
    /// windows, fails pending CCBs, resets per-link sequence state
    /// and the peer's dead/suspect/failover verdicts, and drops the
    /// transport wiring so a restarted incarnation can re-connect
    /// with a fresh epoch.
    MSGPROXY_QUIESCENT void forget_peer(int node);

    /// Quiescent custody settling (call while stopped): drains every
    /// proxy's return paths so in-flight recycles reach the pools,
    /// then republishes stats. The chaos harness calls this before
    /// checking pool_hits == pool_returns.
    MSGPROXY_QUIESCENT void quiesce_returns();

    // ----- observability (src/obs) ---------------------------------

    /// True when stage tracing / histograms are live. Compile with
    /// -DMSGPROXY_OBS_DISABLE to hard-disable (the branch folds to
    /// constant false).
    MSGPROXY_HOT_PATH bool
    obs_on() const
    {
#ifdef MSGPROXY_OBS_DISABLE
        return false;
#else
        return obs_enabled_.load(mp::ord::counter);
#endif
    }

    /// Runtime toggle for tracing + histograms (any thread). Events
    /// already in flight on untraced commands stay untraced.
    void
    set_obs_enabled(bool on)
    {
        obs_enabled_.store(on, mp::ord::counter);
    }

    /// Full observability snapshot: merged + per-proxy counters,
    /// per-op latency quantiles, batch distribution, trace-ring
    /// accounting. Readable while running (approximate).
    NodeSnapshot stats_snapshot() const;

    /// Serializes stats_snapshot() as one JSON document (guarded
    /// numerics: never emits inf/nan).
    void dump_json(std::ostream& os) const;

    /// Surviving trace events of all proxies, merged and sorted by
    /// timestamp. Safe while running (mid-write slots are skipped).
    std::vector<obs::TraceEvent> trace_snapshot() const;

    /// Stage events ever recorded / overwritten across all proxy
    /// trace rings.
    uint64_t trace_recorded() const;
    uint64_t trace_drops() const;

    /// Writes one Chrome-trace JSON (Perfetto) document merging the
    /// given nodes' trace snapshots; see obs::write_chrome_trace.
    static void export_chrome_trace(std::ostream& os,
                                    const std::vector<const Node*>& ns);

  private:
    friend class Endpoint;

    // The wire-level types (packet layout, custody bits, provenance
    // refs, SPSC channels) moved to net/wire.h so transport backends
    // share them; the runtime keeps its historical unqualified names.
    using Packet = net::Packet;
    using PacketRef = net::PacketRef;

    /// Maximum payload carried by one wire packet.
    static constexpr uint32_t kMtu = net::kMtu;

    /// Packet::tx_state bits (sender-side custody tracking); see
    /// net/wire.h for the full contract.
    static constexpr uint8_t kTxRetained = net::kTxRetained;
    static constexpr uint8_t kTxInFlight = net::kTxInFlight;
    static constexpr uint8_t kTxHeap = net::kTxHeap;

    /// Fixed-capacity free list over one contiguous slab of Packets,
    /// private to one proxy thread. Pooled packets are never
    /// re-cleared on reuse: every send site writes the full header,
    /// and receivers read exactly `len` payload bytes, so recycling
    /// skips the ~1.1 KB zeroing (and the malloc/free) that
    /// per-packet `new` paid on every fragment.
    class PacketPool
    {
      public:
        /// Records the capacity only; the slab is allocated by
        /// build() so the owning proxy thread can first-touch it
        /// (NUMA locality when pinned). Until build() runs, try_get
        /// reports empty and callers fall back to the heap.
        explicit PacketPool(size_t cap) : cap_(cap) {}

        /// Allocates the slab and free list. Idempotent; call from
        /// the thread whose NUMA node should own the pages.
        void
        build()
        {
            if (slab_ != nullptr || cap_ == 0)
                return;
            slab_.reset(new Packet[cap_]);
            free_.reserve(cap_);
            for (size_t i = 0; i < cap_; ++i)
                free_.push_back(&slab_[i]);
        }

        Packet*
        try_get()
        {
            if (free_.empty())
                return nullptr;
            Packet* p = free_.back();
            free_.pop_back();
            return p;
        }

        void put(Packet* p) { free_.push_back(p); }

        size_t capacity() const { return cap_; }

        /// Shared handle to the slab so teardown can pin it to the
        /// channels that may still hold this pool's packets (see
        /// net::Channel::retain). Null until build() runs.
        std::shared_ptr<Packet[]> slab() const { return slab_; }

      private:
        std::shared_ptr<Packet[]> slab_;
        size_t cap_;
        std::vector<Packet*> free_;
    };

    using Channel = net::Channel;

    /// One producer-side attachment point of the wire path: either a
    /// raw SPSC channel (`ch`, the devirtualized fast path — loopback
    /// rings and links whose transport advertises chan_out()) or a
    /// generic transport link driven through the virtual hooks (`io`
    /// with `ch == nullptr`). When both are set, `ch` wins on the hot
    /// path and `io` only contributes link-level state queries
    /// (peer_closed, teardown reclaim).
    struct TxPort
    {
        Channel* ch = nullptr;
        net::TransportLink* io = nullptr;

        bool valid() const { return ch != nullptr || io != nullptr; }
    };

    /// Consumer-side counterpart of TxPort: where a received packet's
    /// storage goes back to. Both null: our own pool/heap (loopback
    /// self-delivery).
    struct RxPort
    {
        Channel* ch = nullptr;
        net::TransportLink* io = nullptr;
    };

    struct Segment
    {
        uint8_t* base;
        size_t len;
        bool remote_access;
        int owner_endpoint;
    };

    /// Outstanding GET/DEQ bookkeeping (private to the issuing
    /// proxy).
    struct Ccb
    {
        void* dst;
        uint32_t remaining;
        Flag* lsync;
        uint64_t tid = 0;      ///< trace id (0: untraced)
        uint64_t t_submit = 0; ///< for the round-trip histogram
        /// Target node, so link death can fail every CCB still
        /// waiting on that peer (fail_ccbs).
        int dst_node = -1;
        /// Set while a reply is outstanding; cleared by completion
        /// or by fail_ccbs, whichever comes first — the loser must
        /// not touch the (possibly recycled) slot.
        bool live = false;
    };

    /// A packet parked for later handling, tagged with where its
    /// storage must be retired: `from` names the receive port that
    /// recycles it (both ends null: our own pool or, when heap,
    /// `delete`).
    struct Deferred
    {
        Packet* p;
        RxPort from;
        bool heap;
        bool retained = false; ///< see PacketRef::retained
    };

    /// One full-duplex transport link between this proxy and one
    /// peer proxy on another node, plus the reliability and fault
    /// state both directions share: `out` carries our sequenced
    /// sends (win retains them until the peer's cumulative ack,
    /// piggybacked on inbound traffic or standalone, releases them).
    /// Links are built at first start() and survive stop()/start(), as
    /// the sequence state must: the peer's counters do too.
    struct Link
    {
        Link(int node, int proxy, const net::ReliabilityParams& rp,
             const net::FaultPlan& fp, uint64_t salt)
            : peer_node(node), peer_proxy(proxy), win(rp), inj(fp, salt)
        {
        }

        int peer_node;
        int peer_proxy;
        TxPort out;
        net::SenderWindow<PacketRef> win;
        net::ReceiverSeq rseq;
        net::FaultInjector inj;
        /// Reorder-injected packets held for 1..reorder_depth loop
        /// iterations before delivery.
        struct Stashed
        {
            PacketRef ref;
            uint32_t delay;
        };
        std::vector<Stashed> stash;
        /// Set when win exhausted max_retries: the peer is dead, the
        /// window was abandoned, and sends toward it are dropped.
        bool dead = false;
        /// Per-link liveness clocks of the heartbeat failure
        /// detector (idle unless cfg_.fts.enabled).
        net::LinkFts fts;
        /// The node-level partition switch for this link's peer
        /// (test-only chaos hook), cached so the hot path pays one
        /// relaxed load. Null until start() binds it.
        std::atomic<bool>* bh = nullptr;
    };

    /// One input port plus the link owning its sequence state
    /// (nullptr: intra-node loopback, unsequenced).
    struct RxEntry
    {
        RxPort port;
        Link* link;
    };

    /// Proxy-thread-private counter accumulators. The hot path bumps
    /// these plain integers; publish_stats() copies them into the
    /// atomic ProxyStats once per loop iteration, replacing a
    /// load+store pair per event with one relaxed store per counter
    /// per loop.
    struct LocalStats
    {
        uint64_t commands = 0;
        uint64_t packets_in = 0;
        uint64_t packets_out = 0;
        uint64_t faults = 0;
        uint64_t enq_drops = 0;
        uint64_t polls = 0;
        uint64_t idle_transitions = 0;
        uint64_t pool_hits = 0;
        uint64_t pool_misses = 0;
        uint64_t acks_coalesced = 0;
        uint64_t batch_max = 0;
        uint64_t pkts_dropped = 0;
        uint64_t pkts_retransmitted = 0;
        uint64_t pkts_duplicate = 0;
        uint64_t acks_sent = 0;
        uint64_t crc_fail = 0;
        uint64_t pool_returns = 0;
        uint64_t heap_frees = 0;
        uint64_t busy_polls = 0;
        uint64_t migrations = 0;
        uint64_t pkts_forwarded = 0;
        uint64_t completions_batched = 0;
        uint64_t heartbeats_sent = 0;
        uint64_t failovers = 0;
        uint64_t db_wakeups = 0;
        uint64_t db_false_wakeups = 0;
        uint64_t db_forwards = 0;
        uint64_t db_carries = 0;
        uint64_t db_carry_empty = 0;
    };

    /// Per-proxy-thread state: everything exactly one proxy owns.
    struct Proxy
    {
        Proxy(size_t pool_cap, size_t max_eps)
            : bell(max_eps), wake_ids(new uint32_t[2 * max_eps]),
              carry(new uint32_t[max_eps]),
              carry_mark(new uint64_t[max_eps]()), pool(pool_cap)
        {
        }

        int index = 0;
        ProxyStats stats;
        MSGPROXY_PROXY_OWNED LocalStats local;
        /// Hierarchical command doorbell (bit e at level 0: endpoint
        /// e may have commands). Producers ring with release RMWs;
        /// the proxy consumes top-down before draining so arrivals
        /// are never lost. The shared words live on the heap inside,
        /// isolated from the proxy's private state.
        alignas(64) Doorbell bell;
        /// Owned endpoints visited this loop iteration (exact ids,
        /// may repeat): the candidates for an exact-id carry.
        MSGPROXY_PROXY_OWNED std::unique_ptr<uint32_t[]> wake_ids;
        MSGPROXY_PROXY_OWNED uint32_t wake_n = 0;
        /// Endpoints with verified leftover backlog, re-drained next
        /// iteration without waiting for a doorbell — exact ids, so
        /// a carry never re-walks aliased neighbors (db_carry_empty
        /// proves it).
        MSGPROXY_PROXY_OWNED std::unique_ptr<uint32_t[]> carry;
        MSGPROXY_PROXY_OWNED uint32_t carry_n = 0;
        /// carry_mark[e] == local.polls: e is already carried for
        /// the next iteration (dedup so one endpoint never enters
        /// the carry list twice per loop).
        MSGPROXY_PROXY_OWNED std::unique_ptr<uint64_t[]> carry_mark;
        /// Endpoint-table generation this proxy acknowledged: read
        /// from Node::ep_gen_ at the loop top, published at the loop
        /// end. Reclamation frees a retired slot only after every
        /// proxy's acknowledgment passes the slot's retirement
        /// generation — by then no proxy can hold its pointer.
        std::atomic<uint64_t> ep_gen_seen{0};
        /// This proxy's packet slab (see PacketPool).
        MSGPROXY_PROXY_OWNED PacketPool pool;
        /// CCB table + free list for this proxy's outstanding
        /// GET/DEQ requests.
        MSGPROXY_PROXY_OWNED std::vector<Ccb> ccbs;
        MSGPROXY_PROXY_OWNED std::vector<size_t> free_ccbs;
        /// Request packets deferred while draining inside
        /// send_packet (they would generate new sends and could
        /// recurse unboundedly).
        MSGPROXY_PROXY_OWNED std::deque<Deferred> deferred;
        /// Every port this proxy consumes, paired with its link
        /// (rebuilt at start()).
        MSGPROXY_PROXY_OWNED std::vector<RxEntry> rx;
        /// Every port this proxy produces into: the return paths it
        /// drains to refill the pool.
        MSGPROXY_PROXY_OWNED std::vector<TxPort> tx;
        /// out_by_node[n][q]: this proxy's port toward proxy q of
        /// node n (invalid when unconnected); row cfg_.id holds the
        /// loopback rings (null diagonal). Rebuilt at start().
        MSGPROXY_PROXY_OWNED std::vector<std::vector<TxPort>> out_by_node;
        /// Reliability/fault state per (peer node, peer proxy) pair;
        /// deque for address stability (link_by_node and rx point in).
        MSGPROXY_PROXY_OWNED std::deque<Link> links;
        /// link_by_node[n][q]: the link to proxy q of node n (null
        /// until connected). Built lazily at start(), kept across
        /// restarts.
        MSGPROXY_PROXY_OWNED std::vector<std::vector<Link*>> link_by_node;
        /// Monotonic-clock cache (ns), refreshed every few loop
        /// iterations: RTO precision does not justify a syscall-free
        /// but still ~25 ns clock read per packet.
        MSGPROXY_PROXY_OWNED uint64_t now_cache = 0;
        /// Consecutive no-progress loop iterations (drives the
        /// idle ack flush).
        MSGPROXY_PROXY_OWNED uint64_t idle_polls = 0;
        /// Last peer_dead_gen_ value this proxy acted on: when the
        /// node-level generation moves past it, the proxy sweeps its
        /// links for newly dead peers (one relaxed load per loop).
        MSGPROXY_PROXY_OWNED uint64_t dead_gen_seen = 0;
        /// Stage-event ring (always allocated so the runtime toggle
        /// works; unused rings cost memory, not time).
        std::unique_ptr<obs::TraceRing> ring;
        /// Completion-latency histograms per op kind, written only by
        /// this proxy at its completion sites.
        obs::Log2Hist op_hist[obs::kNumOps];
        /// Work items per non-empty loop iteration.
        obs::Log2Hist batch_hist;
        /// Lint: this proxy's shard of segments/rqueues/ccbs is
        /// owned by the thread bound at proxy_main entry.
        check::ThreadOwner owner;
        std::thread thread;

        // ----- placement -------------------------------------------
        /// CPU this proxy pins to at thread start (-1: unpinned).
        MSGPROXY_PROXY_OWNED int pin_cpu = -1;

        // ----- endpoint migration mailbox --------------------------
        /// Pending migration orders for this proxy (any thread posts;
        /// the proxy swaps the vector out under mig_mu). Deliberately
        /// NOT proxy-owned: it is the one cross-thread door into the
        /// migration path.
        std::atomic<uint32_t> mig_pending{0};
        std::mutex mig_mu;
        struct MigrationOrder
        {
            int ep;
            int to;
        };
        std::vector<MigrationOrder> mig_orders;

        // ----- cross-proxy completion batching ---------------------
        static constexpr size_t kCompletionSlots = 8;
        struct PendingCompletion
        {
            Flag* flag;
            uint64_t amount;
        };
        /// Completion-flag increments deferred within one loop
        /// iteration (note_completion), flushed in one pass at
        /// iteration end or when the slots fill.
        MSGPROXY_PROXY_OWNED PendingCompletion
            comp_pend[kCompletionSlots] = {};
        MSGPROXY_PROXY_OWNED size_t comp_n = 0;

        // ----- work stealing (proxy 0 only) ------------------------
        /// drained_ counter per endpoint at the last rebalance pass:
        /// the window-delta baseline.
        MSGPROXY_PROXY_OWNED std::vector<uint64_t> rebal_seen;
    };

    /// Rings proxy `proxy`'s doorbell for endpoint `user`. The leaf
    /// bit is exact (bit `user` of the level-0 bitmap) and
    /// owner-independent, so a doorbell stays meaningful when the
    /// endpoint migrates and any proxy can re-aim one at the new
    /// owner by calling this again. The Dekker-fenced dedup load,
    /// the release propagation up the summary levels, and their
    /// lost-wakeup arguments live in proxy/doorbell.h. Returns true
    /// when the announcement propagated (false: deduplicated).
    MSGPROXY_HOT_PATH bool
    ring_doorbell(int proxy, int user)
    {
        return proxies_[static_cast<size_t>(proxy)]->bell.ring(
            static_cast<size_t>(user));
    }

    /// Producer-side half of the bit-vector protocol: marks endpoint
    /// `user` as having pending commands at its current owner (no-op
    /// in kScanAll mode). A stale owner read races benignly with
    /// migration: the old owner's drain finds the non-owned doorbell
    /// and forwards it (see proxy_main's forward rule).
    MSGPROXY_HOT_PATH void
    note_command_posted(int user)
    {
        if (cfg_.poll_mode != PollMode::kBitVector)
            return;
        ring_doorbell(endpoint_owner(user), user);
    }

    /// True when dst_node names this node or a connected peer (the
    /// submit-time kBadTarget check).
    bool valid_target(int dst_node) const;

    /// Proxies on `dst_node` (own count for loopback).
    int peer_proxy_count(int dst_node) const;

    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void proxy_main(Proxy& self);
    /// One doorbell-guided endpoint visit: dead-slot skip, the
    /// non-owner forward rule (deduplicated re-aim), then a drain
    /// bounded by cmd_burst and the loop fairness budget (`spent`
    /// counts the iteration's drained commands). Owned visits are
    /// recorded in self.wake_ids for the end-of-iteration exact-id carry
    /// check.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void
    visit_endpoint(Proxy& self, uint32_t e, bool from_carry,
                   uint32_t& spent, bool& progressed);
    /// The endpoint in slot `e`, or null (never created, retired and
    /// reclaimed, or out of range). Any thread; the acquire load
    /// pairs with create_endpoint's release publish of the slot.
    MSGPROXY_HOT_PATH Endpoint*
    endpoint_at(size_t e) const
    {
        if (e >= cfg_.max_endpoints)
            return nullptr;
        return ep_slots_[e].load(mp::ord::observe);
    }
    /// Reclamation passes (caller holds ep_mu_): phase B nulls the
    /// slots of retired endpoints whose backlog drained and stamps
    /// them with a fresh generation; phase C frees graves every
    /// proxy acknowledged. Returns slots freed.
    size_t reclaim_endpoints_locked();
    /// Non-const cmd: failover re-homing may rewrite dst_node before
    /// dispatch (the command was already copied out of the ring).
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void handle_command(Proxy& self, Endpoint& ep,
                                        Command& cmd);
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void handle_packet(Proxy& self, Packet& pkt);
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX bool send_packet(Proxy& self, int dst_node,
                                     int dst_proxy, PacketRef ref);
    /// The link to (dst_node, dst_proxy), or nullptr for intra-node
    /// traffic.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX Link* link_for(Proxy& self, int dst_node,
                                   int dst_proxy);
    /// Stalls until the port has room (draining own inputs and
    /// pumping the link, bounded by running_) and pushes. On
    /// shutdown abort, custody reverts: a retained ref stays with
    /// its window, a transient one is recycled. Returns false only
    /// on that abort.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX bool push_port(Proxy& self, const TxPort& port,
                                   PacketRef ref);
    /// Pushes through the link's fault injector: may drop, clone
    /// (duplicate/corrupt), or stash (reorder) instead of delivering.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX bool inject_push(Proxy& self, Link& lk,
                                   PacketRef ref);
    /// Clone for duplicate/corrupt injection: an independent packet
    /// (own alloc, transient) so pointer custody stays single-copy.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX PacketRef clone_packet(Proxy& self,
                                           const Packet& src);
    /// Per-link maintenance: ages the reorder stash, fires RTO
    /// retransmits, declares the peer dead on retry exhaustion.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void service_link(Proxy& self, Link& lk);
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void service_links(Proxy& self);
    /// Emits standalone kAck packets for links whose receiver owes
    /// one (threshold reached, recovery nudge, or — when `idle` —
    /// any pending ack, so quiescent windows still drain).
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void flush_acks(Proxy& self, bool idle);
    /// Header checksum of a wire packet (tx_state/payload excluded).
    MSGPROXY_HOT_PATH static uint32_t
    packet_crc(const Packet& p)
    {
        return net::packet_crc(p);
    }
    /// Monotonic nanoseconds (steady_clock).
    MSGPROXY_HOT_PATH static uint64_t now_ns();
    /// Drains self's input rings once (budgeted). Requests are
    /// deferred when defer_requests is set (the send_packet stall
    /// path must not recurse into new sends).
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX bool drain_inputs(Proxy& self,
                                      bool defer_requests);
    /// The outbound port to (dst_node, dst_proxy): a loopback ring
    /// (row cfg_.id, invalid on the diagonal) or a transport link's
    /// tx side.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX TxPort out_port(const Proxy& self,
                                     int dst_node, int dst_proxy);
    /// Grabs a wire packet: pool first (refilling from the return
    /// rings when dry), heap as the measured overload fallback.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX PacketRef alloc_packet(Proxy& self);
    /// Retires a consumed packet: heap -> delete; pooled -> the
    /// originating port (loopback return ring or transport rx
    /// release), or straight back into self's pool for self-served
    /// packets (`from` both-null / nullptr).
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void release_packet(Proxy& self, PacketRef ref,
                                        RxPort from);
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void
    release_packet(Proxy& self, PacketRef ref, std::nullptr_t)
    {
        release_packet(self, ref, RxPort{});
    }
    /// Retires one tx packet that came back from a port (return ring
    /// or transport recycle): retained slots rejoin their window
    /// (kTxInFlight cleared), transients go pool- or heap-ward.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void recycle_tx(Proxy& self, Packet* p);
    /// Recycles every returned slot from self's tx ports.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void drain_returns(Proxy& self);
    /// Declares lk's peer link dead: abandons the send window, marks
    /// the peer unreachable, and completes every CCB waiting on it
    /// with kPeerUnreachable.
    MSGPROXY_PROXY_CTX void kill_link(Proxy& self, Link& lk);
    /// Completes (fails) self's live CCBs destined for `peer_node`.
    MSGPROXY_PROXY_CTX void fail_ccbs(Proxy& self, int peer_node);
    /// Kills self's links toward every peer whose node-level verdict
    /// turned dead since self last looked (the cross-proxy half of
    /// declare_peer_dead's exactly-once CCB contract).
    MSGPROXY_PROXY_CTX void sweep_dead_links(Proxy& self);
    /// Marks `node` suspected / clears the suspicion, firing the
    /// peer callback on the transition (proxy threads only).
    void note_peer_suspect(int node, bool suspected);
    /// Lazily builds the node's transport (cfg_.transport) for
    /// listen()/connect(); wiring-phase only.
    net::Transport& ensure_transport();
    /// TransportHost hook: a peer finished wiring against us.
    void on_peer_wired(int peer_node, int peer_proxies,
                       uint64_t epoch) override;
    /// Copies self's LocalStats into the atomic ProxyStats.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX static void publish_stats(Proxy& self);
    /// Thread-start placement: pins self to its CPU (if configured)
    /// and first-touches the packet slab so its pages land on the
    /// proxy's NUMA node. Runs once per start() per proxy (cold:
    /// exempt from the hot-path allocation lint).
    MSGPROXY_HOT_EXEMPT MSGPROXY_PROXY_CTX void
    setup_proxy_thread(Proxy& self);
    /// Drops a migration order into `owner`'s mailbox and nudges its
    /// doorbell path (any thread; cold).
    void post_migration(int owner, int ep, int to);
    /// Executes self's pending migration orders: quiesce-and-handoff
    /// of each named endpoint (bounded courtesy drain, shard_map
    /// publish, doorbell re-aim). The sanctioned cross-shard
    /// migration site, like the MSGPROXY_QUIESCENT wiring phase;
    /// cold, so exempt from the hot-path allocation lint.
    MSGPROXY_HOT_EXEMPT MSGPROXY_PROXY_CTX void
    process_migrations(Proxy& self);
    /// Slow-path work stealing (proxy 0, every
    /// rebalance.window_polls iterations): migrates the hottest
    /// endpoint off the most loaded proxy when the imbalance exceeds
    /// rebalance.min_ratio. Cold by construction (windowed).
    MSGPROXY_HOT_EXEMPT MSGPROXY_PROXY_CTX void
    maybe_rebalance(Proxy& self);
    /// Defers a completion-flag increment into self's batch (or
    /// applies it directly when batching is off / the flag is null).
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void
    note_completion(Proxy& self, Flag* flag, uint64_t amount)
    {
        if (flag == nullptr)
            return;
        if (comp_budget_ == 0) {
            flag->fetch_add(amount, mp::ord::publish);
            return;
        }
        for (size_t i = 0; i < self.comp_n; ++i) {
            if (self.comp_pend[i].flag == flag) {
                self.comp_pend[i].amount += amount;
                ++self.local.completions_batched;
                return;
            }
        }
        if (self.comp_n == comp_budget_)
            flush_completions(self);
        self.comp_pend[self.comp_n++] = {flag, amount};
        ++self.local.completions_batched;
    }
    /// Applies every deferred completion increment in one pass.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void
    flush_completions(Proxy& self)
    {
        for (size_t i = 0; i < self.comp_n; ++i)
            self.comp_pend[i].flag->fetch_add(self.comp_pend[i].amount,
                                              mp::ord::publish);
        self.comp_n = 0;
    }
    /// One proxy's published counters as a NodeStats (the summing /
    /// per-proxy building block of stats() and stats_snapshot()).
    static NodeStats read_proxy_stats(const ProxyStats& s);
    /// Fresh node-salted trace id (never 0).
    MSGPROXY_HOT_PATH uint64_t
    make_tid()
    {
        return (uint64_t(cfg_.id + 1) << 40) |
               next_tid_.fetch_add(1, mp::ord::counter);
    }
    /// Records a stage event into self's trace ring.
    MSGPROXY_HOT_PATH MSGPROXY_PROXY_CTX void
    trace_stage(Proxy& self, uint64_t ts, uint64_t tid,
                obs::Stage stage, obs::OpKind op, uint32_t aux)
    {
        self.ring->record(obs::TraceEvent{
            ts, tid, stage, op, static_cast<uint8_t>(self.index),
            aux});
    }

    NodeConfig cfg_;
    /// cfg_.completion_flush clamped to Proxy::kCompletionSlots,
    /// cached so note_completion branches on a plain member.
    size_t comp_budget_ = 0;
    std::vector<std::unique_ptr<Proxy>> proxies_;
    /// Endpoint slot table, sized cfg_.max_endpoints at
    /// construction. A slot holds null (never created / reclaimed)
    /// or a node-owned Endpoint published with release by
    /// create_endpoint; proxies re-load it per visit (endpoint_at)
    /// so a reclaimed slot is skipped, never scanned. Slots are only
    /// nulled under ep_mu_ by reclamation, and the pointee is freed
    /// only after every proxy acknowledged the retirement generation
    /// (Proxy::ep_gen_seen) — the epoch-based reclamation contract.
    std::unique_ptr<std::atomic<Endpoint*>[]> ep_slots_;
    /// High-water slot count: slots [0, ep_count_) may be live.
    /// Published with release after the slot itself so scan-all
    /// proxies that see the count also see the endpoint.
    std::atomic<size_t> ep_count_{0};
    /// Serializes create/retire/reclaim (cold path only).
    mutable std::mutex ep_mu_;
    /// Reclaimed ids available for reuse (guarded by ep_mu_).
    std::vector<uint32_t> ep_free_;
    /// Retired ids whose backlog has not drained yet (ep_mu_).
    std::vector<uint32_t> ep_retired_;
    /// Retired endpoints awaiting every proxy's generation ack
    /// before the memory is freed (ep_mu_).
    struct EpGrave
    {
        std::unique_ptr<Endpoint> ep;
        uint64_t gen;
    };
    std::vector<EpGrave> ep_graves_;
    /// Endpoint-table generation: bumped (release) after each slot
    /// null; proxies acknowledge via Proxy::ep_gen_seen.
    std::atomic<uint64_t> ep_gen_{0};
    /// shard_map_[e]: owning proxy of endpoint e, sized
    /// cfg_.max_endpoints at construction (endpoint_owner falls back
    /// to the static rule beyond it — ids from a misconfigured
    /// wire). Owners write with mp::ord::publish at handoff;
    /// everyone reads with observe.
    std::unique_ptr<std::atomic<uint32_t>[]> shard_map_;
    size_t shard_map_size_ = 0;
    /// Resolved CPU per proxy (empty: unpinned), built at first
    /// start() from cfg_.placement.
    std::vector<int> pinned_cpus_;
    std::vector<Segment> segments_;
    /// Intra-node cross-proxy rings, flattened producer-major:
    /// loop_[p * num_proxies + q] carries proxy p -> proxy q, null
    /// diagonal (a proxy serves itself directly). Built lazily at
    /// start(); inter-node wiring lives in transport_.
    std::vector<std::shared_ptr<Channel>> loop_;
    /// The inter-node wire path (cfg_.transport backend); null until
    /// the first listen()/connect().
    std::unique_ptr<net::Transport> transport_;
    /// transport_.get() when the backend needs per-iteration pump()
    /// calls (sockets), else null — cached at start() so the hot
    /// loop's check is one load, not a virtual call.
    net::Transport* io_pump_ = nullptr;
    /// Serializes wiring (ensure_transport / on_peer_wired) against
    /// concurrent accept threads. Cold path only.
    std::mutex wiring_mu_;
    /// peer_proxies_[n]: num_proxies of connected node n (0 when
    /// unconnected).
    std::vector<int> peer_proxies_;
    /// Proxy-managed remote queues; entry qid is touched only by
    /// proxy (qid mod num_proxies) after start().
    std::vector<std::deque<std::vector<uint8_t>>> rqueues_;
    /// peer_dead_[n]: set (by whichever proxy exhausts a link first)
    /// when node n is unreachable; read by user threads in submit.
    /// Allocated at connect() time, before any thread runs.
    std::vector<std::unique_ptr<std::atomic<bool>>> peer_dead_;
    /// peer_state_[n]: the failure detector's verdict on node n
    /// (net::PeerState as uint8_t). Transitions go through
    /// declare_peer_dead / note_peer_suspect so the callback fires
    /// exactly once per edge.
    std::vector<std::unique_ptr<std::atomic<uint8_t>>> peer_state_;
    /// failover_[n]: node new submits to dead node n re-home to
    /// (-1: fail with kPeerUnreachable instead). Resolved once by
    /// declare_peer_dead from cfg_.fts.survivor.
    std::vector<std::unique_ptr<std::atomic<int32_t>>> failover_;
    /// blackhole_[n]: chaos partition switch; links cache the
    /// pointer (Link::bh) so the hot path never indexes here.
    std::vector<std::unique_ptr<std::atomic<bool>>> blackhole_;
    /// peer_epoch_[n]: highest incarnation of node n seen in wiring
    /// handshakes (0: never wired). Guarded by wiring_mu_.
    std::vector<uint64_t> peer_epoch_;
    /// Bumped by declare_peer_dead; proxies compare against their
    /// dead_gen_seen to notice deaths declared by other proxies (or
    /// user threads) without scanning peer_dead_ every loop.
    std::atomic<uint64_t> peer_dead_gen_{0};
    /// Peer state-transition callback (set_peer_callback).
    std::function<void(int, net::PeerState)> peer_cb_;
    std::atomic<bool> running_{false};
    /// Observability master switch (NodeConfig::obs.enabled, runtime
    /// togglable via set_obs_enabled).
    std::atomic<bool> obs_enabled_{false};
    /// Trace-id allocator (make_tid).
    std::atomic<uint64_t> next_tid_{1};
};

inline int
Endpoint::proxy() const
{
    return node_.endpoint_owner(id_);
}

} // namespace proxy

#endif // MSGPROXY_PROXY_RUNTIME_H
