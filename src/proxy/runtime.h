/// \file
/// The real (host-thread) message-proxy runtime: the Section 4
/// implementation of the paper, realized with std::thread and the
/// lock-free SPSC queues of spsc/ring_queue.h.
///
/// One Node models one SMP: a set of user endpoints plus a dedicated
/// proxy thread that polls every endpoint's command queue and the
/// inter-node channels round-robin, exactly like Figure 5 of the
/// paper. Users submit PUT/GET/ENQ commands through their private
/// command queues; the proxy validates segment permissions, moves the
/// data (zero-copy between registered segments), and signals
/// completion through atomic flags. The implementation is lock-free
/// end-to-end, interrupt-free, and protected: a user can only reach
/// remote memory through segments the owner registered for remote
/// access.
///
/// Remote addresses are (node, segment, offset) triples, mirroring
/// the paper's asid-relative addressing.

#ifndef MSGPROXY_PROXY_RUNTIME_H
#define MSGPROXY_PROXY_RUNTIME_H

#include <atomic>
#include <deque>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "check/ownership.h"
#include "spsc/ring_queue.h"

namespace proxy {

/// Completion flag: the runtime increments it with release ordering;
/// users poll or spin with acquire ordering.
using Flag = std::atomic<uint64_t>;

/// Spin until flag >= v (with a CPU-relax hint).
void flag_wait_ge(const Flag& f, uint64_t v);

/// A communication command as it sits in a user command queue.
struct Command
{
    enum class Op : uint8_t {
        kNop,
        kPut,
        kGet,
        kEnq,   ///< message to an endpoint's receive ring
        kRqEnq, ///< append to a proxy-managed remote queue
        kRqDeq  ///< dequeue from a proxy-managed remote queue
    };

    /// ENQ payloads are copied inline at submission (eager-send
    /// semantics for small messages); PUT sources are referenced and
    /// must stay valid until lsync fires (zero-copy semantics).
    static constexpr uint32_t kMaxEnqBytes = 256;

    Op op = Op::kNop;
    int32_t dst_node = -1;
    int32_t dst_user = -1;  ///< ENQ: receiving endpoint on dst_node
    uint16_t dst_seg = 0;   ///< PUT/GET: target segment id
    uint64_t dst_off = 0;   ///< PUT/GET: offset within the segment
    const void* src = nullptr; ///< PUT: local source (referenced)
    void* dst = nullptr;       ///< GET: local destination
    uint32_t len = 0;
    Flag* lsync = nullptr;
    Flag* rsync = nullptr;
    uint8_t inline_data[kMaxEnqBytes]; ///< ENQ payload (copied)
};

/// Runtime counters (per node). Atomic so user threads can observe
/// them while the proxy runs.
struct NodeStats
{
    std::atomic<uint64_t> commands{0}; ///< commands consumed
    std::atomic<uint64_t> packets_in{0};
    std::atomic<uint64_t> packets_out{0};
    std::atomic<uint64_t> faults{0};    ///< violations suppressed
    std::atomic<uint64_t> enq_drops{0}; ///< receive-ring overflows
    std::atomic<uint64_t> polls{0};     ///< proxy loop iterations
};

class Node;

/// A user process's interface to its node's message proxy.
///
/// Thread model: exactly one user thread may operate on an Endpoint
/// (its command queue is single-producer; its receive ring is
/// single-consumer).
class Endpoint
{
  public:
    /// Registers `len` bytes at `base` as segment usable by remote
    /// nodes when `remote_access` is true. Returns the segment id
    /// (node-wide address space, mirroring the paper's asid model).
    uint16_t register_segment(void* base, size_t len,
                              bool remote_access = true);

    /// Asynchronous PUT into (node, segment, offset). lsync is
    /// incremented when the command and data have been handed to the
    /// wire (the source buffer is then reusable); rsync is a flag in
    /// the destination node's address space, incremented there once
    /// the data is in place. The source must stay valid until lsync
    /// fires. Returns false when the command queue is full (retry).
    bool put(const void* src, int dst_node, uint16_t dst_seg,
             uint64_t dst_off, uint32_t len, Flag* lsync = nullptr,
             Flag* rsync = nullptr);

    /// Asynchronous GET from (node, segment, offset) into dst; lsync
    /// increments when the data has arrived.
    bool get(void* dst, int dst_node, uint16_t dst_seg, uint64_t dst_off,
             uint32_t len, Flag* lsync = nullptr);

    /// Asynchronous message enqueue to endpoint `dst_user` on
    /// `dst_node`; the payload (at most Command::kMaxEnqBytes) is
    /// copied at submission, so `data` is immediately reusable. lsync
    /// increments when handed to the wire.
    bool enq(const void* data, uint32_t len, int dst_node, int dst_user,
             Flag* lsync = nullptr);

    /// Non-blocking receive from this endpoint's message ring.
    bool try_recv(std::vector<uint8_t>& out);

    // ----- proxy-managed remote queues (the paper's RQ primitive) ---

    /// Appends a message to remote queue `qid` on `dst_node`; lsync
    /// increments when handed to the wire. Payload is copied at
    /// submission (max Command::kMaxEnqBytes).
    bool rq_enq(const void* data, uint32_t len, int dst_node, int qid,
                Flag* lsync = nullptr);

    /// Dequeues the head of remote queue `qid` on `dst_node` into
    /// `dst` (up to `max` bytes). When the reply arrives, lsync is
    /// incremented by 1 + bytes received (exactly 1 if the queue was
    /// empty), mirroring the simulator's DEQ semantics.
    bool rq_deq(void* dst, uint32_t max, int dst_node, int qid,
                Flag* lsync);

    /// Endpoint index on its node.
    int id() const { return id_; }

    /// Owning node id.
    int node() const;

    /// Diagnostic flag bumped on protection faults observed locally.
    Flag& fault_flag() { return faults_; }

    /// Ownership-lint escape hatch (MSGPROXY_CHECK_OWNERSHIP builds):
    /// unbinds both SPSC roles so the endpoint can be handed to
    /// another thread. Call only while no operation is in flight.
    void
    release_ownership()
    {
        cmd_owner_.release();
        recv_owner_.release();
    }

  private:
    friend class Node;

    explicit Endpoint(Node& node, int id) : node_(node), id_(id) {}

    Node& node_;
    int id_;
    spsc::RingQueue<Command, 256> cmdq_;
    spsc::MsgRing<1 << 16> recvq_;
    Flag faults_{0};
    /// Lint: the one user thread allowed to produce into cmdq_.
    check::ThreadOwner cmd_owner_;
    /// Lint: the one user thread allowed to consume recvq_.
    check::ThreadOwner recv_owner_;
};

/// One simulated SMP node with a dedicated proxy thread.
class Node
{
  public:
    /// How the proxy discovers non-empty command queues.
    enum class PollMode {
        kScanAll,  ///< probe every queue head each loop (Figure 5)
        kBitVector ///< cooperative shared bit vector: producers set
                   ///< their bit on enqueue and the proxy probes all
                   ///< queues in one load (the Section 4.1
                   ///< acceleration; supports up to 64 endpoints)
    };

    /// Creates node `id`. Call connect() to wire nodes together, then
    /// start() to launch the proxy.
    explicit Node(int id, PollMode poll_mode = PollMode::kBitVector);
    ~Node();

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    /// Creates a user endpoint (before start()).
    Endpoint& create_endpoint();

    /// Creates a proxy-managed remote queue on this node (before
    /// start()); returns its id. Any endpoint on any connected node
    /// may rq_enq/rq_deq it; the owning proxy serializes access —
    /// this is the paper's Remote Queue with the proxy as the single
    /// trusted manipulator of the queue pointers.
    int create_queue();

    /// Wires a full-duplex channel between two nodes (before start()
    /// on either).
    static void connect(Node& a, Node& b);

    /// Launches the proxy thread.
    void start();

    /// Stops the proxy thread (also called by the destructor).
    void stop();

    /// Node id.
    int id() const { return id_; }

    /// Runtime counters (readable while running; approximate).
    const NodeStats& stats() const { return stats_; }

  private:
    friend class Endpoint;

    /// Maximum payload carried by one wire packet.
    static constexpr uint32_t kMtu = 1024;

    struct Packet
    {
        enum class Kind : uint8_t {
            kPutData,   ///< payload -> segment memory
            kGetReq,    ///< request for data
            kGetData,   ///< reply payload -> CCB destination
            kEnqData,   ///< payload -> endpoint receive ring
            kRqEnqData, ///< payload -> proxy-managed remote queue
            kRqDeqReq,  ///< dequeue request (ccb identifies requester)
            kRqDeqData, ///< dequeue reply (flags bit1: queue was empty)
            kAck        ///< rsync/lsync acknowledgment
        };
        Kind kind;
        uint8_t flags = 0; ///< bit0: last fragment
        int32_t src_node;
        int32_t src_user;
        uint16_t seg;
        uint32_t len;
        uint64_t off;
        uint64_t ccb;      ///< requester cookie for GET replies / acks
        uint8_t payload[kMtu];
    };

    struct Channel
    {
        spsc::RingQueue<std::unique_ptr<Packet>, 1024> ring;
    };

    struct Segment
    {
        uint8_t* base;
        size_t len;
        bool remote_access;
        int owner_endpoint;
    };

    /// Outstanding GET bookkeeping (proxy-thread private).
    struct Ccb
    {
        void* dst;
        uint32_t remaining;
        Flag* lsync;
    };

    /// Producer-side half of the bit-vector protocol: marks endpoint
    /// `user` as having pending commands (no-op in kScanAll mode).
    void
    note_command_posted(int user)
    {
        if (poll_mode_ == PollMode::kBitVector) {
            cmd_mask_.fetch_or(uint64_t{1} << (user & 63),
                               std::memory_order_release);
        }
    }

    void proxy_main();
    void handle_command(Endpoint& ep, const Command& cmd);
    void handle_packet(Packet& pkt);
    bool send_packet(int dst_node, std::unique_ptr<Packet> pkt);
    Channel* out_channel(int dst_node);

    int id_;
    std::vector<std::unique_ptr<Endpoint>> endpoints_;
    std::vector<Segment> segments_;
    // out_[n] / in_[n]: channels to/from node n (nullptr: unconnected)
    std::vector<std::shared_ptr<Channel>> out_;
    std::vector<std::shared_ptr<Channel>> in_;
    std::vector<Ccb> ccbs_;
    /// Proxy-managed remote queues (only the proxy thread touches
    /// them after start()).
    std::vector<std::deque<std::vector<uint8_t>>> rqueues_;
    std::vector<size_t> free_ccbs_;
    /// GET requests deferred while draining inside send_packet (they
    /// would generate new sends and could recurse unboundedly).
    std::deque<std::unique_ptr<Packet>> deferred_reqs_;
    NodeStats stats_;
    PollMode poll_mode_;
    /// Shared command-queue occupancy bits (bit i: endpoint i may
    /// have commands). Producers set with release; the proxy clears
    /// before draining so arrivals are never lost.
    std::atomic<uint64_t> cmd_mask_{0};
    /// Lint: segments_/rqueues_/ccbs_ are proxy-thread-only while
    /// running (bound at proxy_main entry).
    check::ThreadOwner proxy_owner_;
    std::thread proxy_;
    std::atomic<bool> running_{false};
};

} // namespace proxy

#endif // MSGPROXY_PROXY_RUNTIME_H
