/// \file
/// Hierarchical doorbell bitmap: event-driven work discovery for one
/// proxy over up to millions of endpoints.
///
/// The PR 2 bit-vector doorbell was a single 64-bit word indexed
/// `endpoint & 63`: past 64 endpoints the bits alias and every set
/// bit forces a walk of all endpoints sharing it — O(N) per wakeup,
/// exactly the polling-delay blowup (the paper's `P` term) the
/// doorbell was meant to kill. This bitmap gives every endpoint its
/// own level-0 bit and summarizes 64 words per bit at each level
/// above, so:
///
///   - an idle probe is one load of the top summary word (empty()),
///   - a wakeup visits only endpoints that actually posted
///     (consume() walks top-down through set bits),
///   - a ring is one fenced dedup load plus at most `levels` release
///     RMWs, early-stopped at the first level whose bit was already
///     set.
///
/// Producer protocol (ring): seq_cst fence, then a fenced (relaxed)
/// load of the leaf word — when the endpoint's bit is already set the
/// whole propagation is skipped, the same Dekker-fenced dedup the
/// flat mask shipped with (see runtime.h ring_doorbell's original
/// argument: the fence orders the command-queue publish before the
/// probe; the proxy's exchange is an RMW and therefore totally
/// ordered against it). Otherwise every level gets an unconditional
/// fetch_or(release): an RMW reads the latest value in the word's
/// modification order, so — unlike a plain load — it can never be
/// satisfied by a stale "bit set" snapshot of a word the proxy has
/// since consumed. The propagation early-stops only when the RMW's
/// own return value shows the bit set, which proves, at that point
/// in modification order, a live chain above:
///
///   Invariant: a set bit at level l implies either the covering bit
///   at level l+1 is set, or the consumer has already consumed that
///   covering bit and is committed to exchanging this word before
///   going idle.  Proof sketch (induction on the early-stop): if our
///   fetch_or at level l returns the bit set, the setter of that bit
///   either propagated above or early-stopped on the same invariant;
///   if instead the consumer had already cleared level l before our
///   RMW, our RMW would have returned the bit clear and we would
///   have continued upward. Either way our level-(l-1) bits, written
///   before the level-l RMW, are visible to the consumer's top-down
///   exchanges: each exchange is an acquire RMW reading after ours
///   in modification order, and the release-sequence chain through
///   the stacked fetch_ors carries our earlier writes with it.
///
/// Consumer protocol (consume): exchange(0, acquire) each word
/// top-down, recursing into set bits; single consumer (the owning
/// proxy). ring_sync() is the migration re-aim variant: it skips the
/// dedup load and unconditionally propagates, preserving the PR 8
/// checker-verified property that the shard-map publish and the
/// doorbell release RMW each protect the drain on their own.
///
/// Per-level ring/consume counters feed Node::stats_snapshot(): the
/// endpoint-sweep bench proves the idle probe is O(1) by watching
/// the consume counters stay flat across idle polls.

#ifndef MSGPROXY_PROXY_DOORBELL_H
#define MSGPROXY_PROXY_DOORBELL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/annotations.h"
#include "util/orders.h"

namespace proxy {

class Doorbell
{
  public:
    /// Enough for 64^6 = 6.9e10 endpoints; 1M needs 4.
    static constexpr int kMaxLevels = 6;

    /// Builds the hierarchy over `capacity` endpoint slots (at least
    /// 1 word per level; capacity <= 64 degenerates to the flat
    /// single-word mask).
    explicit Doorbell(size_t capacity)
    {
        size_t words = word_count(capacity);
        nlevels_ = 0;
        size_t total = 0;
        while (true) {
            level_words_[nlevels_] = words;
            level_off_[nlevels_] = total;
            total += words;
            ++nlevels_;
            if (words == 1)
                break;
            words = word_count(words);
        }
        words_.reset(new std::atomic<uint64_t>[total]);
        for (size_t i = 0; i < total; ++i)
            words_[i].store(0, mp::ord::counter);
    }

    Doorbell(const Doorbell&) = delete;
    Doorbell& operator=(const Doorbell&) = delete;

    /// Producer side: announce endpoint `e` (its command queue has
    /// work). Returns true when the announcement propagated (the
    /// leaf bit was clear), false when it was deduplicated — the
    /// doorbell-storm counterpressure the forward rule relies on.
    MSGPROXY_HOT_PATH bool
    ring(size_t e)
    {
        const uint64_t bit = uint64_t{1} << (e & 63);
        std::atomic<uint64_t>& leaf = words_[e >> 6];
        std::atomic_thread_fence(mp::ord::barrier);
        if ((leaf.load(mp::ord::fenced) & bit) != 0)
            return false; // already announced; chain above is live
        propagate(e);
        return true;
    }

    /// Migration re-aim: unconditional release propagation, no dedup
    /// load (callers already ordered their payload — e.g. the
    /// shard-map publish — before this RMW).
    void ring_sync(size_t e) { propagate(e); }

    /// The O(1) idle probe: one acquire load of the top summary.
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        return words_[level_off_[nlevels_ - 1]].load(
                   mp::ord::observe) == 0;
    }

    /// Consumer side: harvest every posted endpoint, invoking
    /// fn(endpoint_id) per set leaf bit, top-down. Single consumer.
    /// Returns the number of endpoints harvested.
    template <typename Fn>
    MSGPROXY_HOT_PATH size_t
    consume(Fn&& fn)
    {
        return consume_word(nlevels_ - 1, 0, fn);
    }

    int levels() const { return nlevels_; }

    /// Announcements that actually propagated at level l (leaf bit
    /// transitions 0 -> 1 as seen by the ringing thread). Multiple
    /// producers bump these; readable from any thread.
    uint64_t
    rings(int l) const
    {
        return rings_[static_cast<size_t>(l)].load(mp::ord::counter);
    }

    /// Bits consumed at level l (single writer: the owning proxy).
    uint64_t
    consumes(int l) const
    {
        return consumed_[static_cast<size_t>(l)].load(
            mp::ord::counter);
    }

  private:
    static size_t
    word_count(size_t n)
    {
        return (n + 63) / 64 == 0 ? 1 : (n + 63) / 64;
    }

    MSGPROXY_HOT_PATH void
    propagate(size_t e)
    {
        size_t key = e;
        for (int l = 0; l < nlevels_; ++l) {
            const uint64_t bit = uint64_t{1} << (key & 63);
            key >>= 6;
            std::atomic<uint64_t>& w =
                words_[level_off_[l] + key];
            const uint64_t prev = w.fetch_or(bit, mp::ord::publish);
            if ((prev & bit) != 0)
                return; // set by a live chain: early-stop is safe
                        // (see the file comment's invariant)
            rings_[static_cast<size_t>(l)].fetch_add(
                1, mp::ord::counter);
        }
    }

    template <typename Fn>
    MSGPROXY_HOT_PATH size_t
    consume_word(int l, size_t widx, Fn& fn)
    {
        uint64_t bits = words_[level_off_[l] + widx].exchange(
            0, mp::ord::observe);
        if (bits == 0)
            return 0;
        auto& c = consumed_[static_cast<size_t>(l)];
        c.store(c.load(mp::ord::counter) +
                    static_cast<uint64_t>(
                        __builtin_popcountll(bits)),
                mp::ord::counter);
        size_t n = 0;
        while (bits != 0) {
            const int b = __builtin_ctzll(bits);
            bits &= bits - 1;
            const size_t child = widx * 64 + static_cast<size_t>(b);
            if (l == 0) {
                fn(child);
                ++n;
            } else {
                n += consume_word(l - 1, child, fn);
            }
        }
        return n;
    }

    std::unique_ptr<std::atomic<uint64_t>[]> words_;
    size_t level_off_[kMaxLevels] = {};
    size_t level_words_[kMaxLevels] = {};
    int nlevels_ = 1;
    /// Stats live on their own line: producers RMW rings_ and must
    /// not ping-pong the proxy's consumed_ counters alongside.
    alignas(64) std::atomic<uint64_t> rings_[kMaxLevels] = {};
    alignas(64) std::atomic<uint64_t> consumed_[kMaxLevels] = {};
};

} // namespace proxy

#endif // MSGPROXY_PROXY_DOORBELL_H
