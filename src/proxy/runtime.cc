#include "proxy/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/transport_inproc.h"
#include "obs/export.h"
#include "util/log.h"
#include "util/topology.h"

namespace proxy {

namespace {

/// MSGPROXY_STALL_DEBUG=1 makes the bounded stall loops print a
/// heartbeat to stderr every ~1M spins — the way to localize a wedged
/// proxy on hosts without a debugger.
bool
stall_debug()
{
    static const bool on =
        std::getenv("MSGPROXY_STALL_DEBUG") != nullptr;
    return on;
}

/// CPU-relax hint for the pause stage of the backoff machine.
inline void
cpu_pause()
{
#if defined(__x86_64__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

/// TxPort fast-path dispatch, templated so the private nested type
/// deduces: a non-null `ch` keeps the direct SPSC ring ops of the
/// in-process wire path; only ring-less (socket) ports pay the
/// virtual hook.
template <typename Port>
MSGPROXY_HOT_PATH inline bool
port_full(const Port& port)
{
    if (port.ch != nullptr)
        return port.ch->ring.full();
    return port.io->tx_full();
}

template <typename Port>
MSGPROXY_HOT_PATH inline bool
port_try_push(const Port& port, net::PacketRef ref)
{
    if (port.ch != nullptr)
        return port.ch->ring.try_push(ref);
    if (port.io->tx_full())
        return false;
    return port.io->send_burst(&ref, 1) == 1;
}

template <typename Port>
MSGPROXY_HOT_PATH inline bool
port_try_pop(const Port& port, net::PacketRef& out)
{
    if (port.ch != nullptr)
        return port.ch->ring.try_pop(out);
    return port.io->poll_recv(&out, 1) == 1;
}

/// Single source of truth tying each counter's name to its slot in
/// both counter structs: read_proxy_stats, stats(), stats_snapshot()
/// and dump_json() all walk this table, so adding a counter is one
/// line in each struct plus one row here.
struct StatField
{
    const char* name;
    uint64_t NodeStats::*v;
    std::atomic<uint64_t> ProxyStats::*a;
    /// Combine across proxies by max instead of sum (batch_max).
    bool combine_max;
};

constexpr StatField kStatFields[] = {
    {"commands", &NodeStats::commands, &ProxyStats::commands, false},
    {"packets_in", &NodeStats::packets_in, &ProxyStats::packets_in,
     false},
    {"packets_out", &NodeStats::packets_out, &ProxyStats::packets_out,
     false},
    {"faults", &NodeStats::faults, &ProxyStats::faults, false},
    {"enq_drops", &NodeStats::enq_drops, &ProxyStats::enq_drops,
     false},
    {"polls", &NodeStats::polls, &ProxyStats::polls, false},
    {"idle_transitions", &NodeStats::idle_transitions,
     &ProxyStats::idle_transitions, false},
    {"pool_hits", &NodeStats::pool_hits, &ProxyStats::pool_hits,
     false},
    {"pool_misses", &NodeStats::pool_misses, &ProxyStats::pool_misses,
     false},
    {"acks_coalesced", &NodeStats::acks_coalesced,
     &ProxyStats::acks_coalesced, false},
    {"batch_max", &NodeStats::batch_max, &ProxyStats::batch_max, true},
    {"pkts_dropped", &NodeStats::pkts_dropped,
     &ProxyStats::pkts_dropped, false},
    {"pkts_retransmitted", &NodeStats::pkts_retransmitted,
     &ProxyStats::pkts_retransmitted, false},
    {"pkts_duplicate", &NodeStats::pkts_duplicate,
     &ProxyStats::pkts_duplicate, false},
    {"acks_sent", &NodeStats::acks_sent, &ProxyStats::acks_sent,
     false},
    {"crc_fail", &NodeStats::crc_fail, &ProxyStats::crc_fail, false},
    {"pool_returns", &NodeStats::pool_returns,
     &ProxyStats::pool_returns, false},
    {"heap_frees", &NodeStats::heap_frees, &ProxyStats::heap_frees,
     false},
    {"busy_polls", &NodeStats::busy_polls, &ProxyStats::busy_polls,
     false},
    {"migrations", &NodeStats::migrations, &ProxyStats::migrations,
     false},
    {"pkts_forwarded", &NodeStats::pkts_forwarded,
     &ProxyStats::pkts_forwarded, false},
    {"completions_batched", &NodeStats::completions_batched,
     &ProxyStats::completions_batched, false},
    {"heartbeats_sent", &NodeStats::heartbeats_sent,
     &ProxyStats::heartbeats_sent, false},
    {"failovers", &NodeStats::failovers, &ProxyStats::failovers,
     false},
    {"db_wakeups", &NodeStats::db_wakeups, &ProxyStats::db_wakeups,
     false},
    {"db_false_wakeups", &NodeStats::db_false_wakeups,
     &ProxyStats::db_false_wakeups, false},
    {"db_forwards", &NodeStats::db_forwards, &ProxyStats::db_forwards,
     false},
    {"db_carries", &NodeStats::db_carries, &ProxyStats::db_carries,
     false},
    {"db_carry_empty", &NodeStats::db_carry_empty,
     &ProxyStats::db_carry_empty, false},
};

/// Sums (or maxes) `p` into `acc` field by field.
void
accumulate_stats(NodeStats& acc, const NodeStats& p)
{
    for (const StatField& f : kStatFields) {
        if (f.combine_max)
            acc.*f.v = std::max(acc.*f.v, p.*f.v);
        else
            acc.*f.v += p.*f.v;
    }
}

/// Command op -> histogram/trace op kind (kNop never reaches the
/// traced paths).
obs::OpKind
op_kind(Command::Op op)
{
    switch (op) {
      case Command::Op::kGet: return obs::OpKind::kGet;
      case Command::Op::kEnq: return obs::OpKind::kEnq;
      case Command::Op::kRqEnq: return obs::OpKind::kRqEnq;
      case Command::Op::kRqDeq: return obs::OpKind::kRqDeq;
      default: return obs::OpKind::kPut;
    }
}

/// Quantile extraction over one merged bucket set -> OpLatency.
void
finish_latency(OpLatency& ol)
{
    ol.p50_ns = obs::quantile_from_buckets(ol.buckets, 0.50);
    ol.p95_ns = obs::quantile_from_buckets(ol.buckets, 0.95);
    ol.p99_ns = obs::quantile_from_buckets(ol.buckets, 0.99);
}

/// One OpLatency as a JSON object (guarded numerics).
void
latency_json(std::ostream& os, const OpLatency& ol)
{
    os << "{\"op\":\"" << ol.op << "\",\"count\":" << ol.count
       << ",\"p50_ns\":";
    obs::json_num(os, ol.p50_ns);
    os << ",\"p95_ns\":";
    obs::json_num(os, ol.p95_ns);
    os << ",\"p99_ns\":";
    obs::json_num(os, ol.p99_ns);
    os << ",\"max_ns\":" << ol.max_ns << "}";
}

} // namespace

PollParams::PollParams()
{
    // On a single-hardware-thread host the producer and the proxy
    // time-share one core: any spinning only steals the producer's
    // timeslice, so yield immediately (the pre-adaptive behaviour).
    static const unsigned hw = std::thread::hardware_concurrency();
    const bool solo = hw <= 1;
    spin_iters = solo ? 0 : 64;
    pause_iters = solo ? 0 : 512;
    yield_iters_before_sleep = 0;
    sleep_us = 0;
}

void
Backoff::idle()
{
    ++n_;
    if (n_ <= p_.spin_iters)
        return; // stage 1: tight re-poll
    if (n_ <= p_.spin_iters + p_.pause_iters) {
        cpu_pause(); // stage 2: relax the pipeline, stay on-core
        return;
    }
    if (p_.sleep_us > 0 &&
        n_ > static_cast<uint64_t>(p_.spin_iters) + p_.pause_iters +
                 p_.yield_iters_before_sleep) {
        // stage 4 (opt-in): long-idle, genuinely get off the core.
        std::this_thread::sleep_for(
            std::chrono::microseconds(p_.sleep_us));
        return;
    }
    std::this_thread::yield(); // stage 3: cede the core per quantum
}

void
flag_wait_ge(const Flag& f, uint64_t v, const PollParams& pp)
{
    Backoff bo(pp);
    while (f.load(mp::ord::observe) < v)
        bo.idle();
}

const char*
SubmitStatus::name() const
{
    switch (code_) {
      case kOk: return "kOk";
      case kQueueFull: return "kQueueFull";
      case kTooLarge: return "kTooLarge";
      case kBadTarget: return "kBadTarget";
      case kPeerUnreachable: return "kPeerUnreachable";
      case kRetired: return "kRetired";
    }
    return "<invalid>";
}

std::ostream&
operator<<(std::ostream& os, SubmitStatus s)
{
    return os << s.name();
}

// ---------------------------------------------------------------- Endpoint

int
Endpoint::node() const
{
    return node_.id();
}

uint16_t
Endpoint::register_segment(void* base, size_t len, bool remote_access)
{
    MP_CHECK(!node_.running_.load(mp::ord::observe),
             "segments must be registered before Node::start()");
    Node::Segment seg;
    seg.base = static_cast<uint8_t*>(base);
    seg.len = len;
    seg.remote_access = remote_access;
    seg.owner_endpoint = id_;
    node_.segments_.push_back(seg);
    return static_cast<uint16_t>(node_.segments_.size() - 1);
}

SubmitStatus
Endpoint::submit(Command&& c)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    if (retired_.load(mp::ord::counter))
        return SubmitStatus::kRetired;
    if (node_.obs_on()) {
        c.tid = node_.make_tid();
        c.t_submit = Node::now_ns();
    }
    if (!node_.valid_target(c.dst_node))
        return SubmitStatus::kBadTarget;
    if (c.dst_node != node_.id() &&
        node_.peer_unreachable(c.dst_node)) {
        // Dead peer: with a resolved failover target the command is
        // accepted and re-homed by the owning proxy
        // (handle_command); a configured-but-unusable survivor is a
        // target error, no survivor keeps the historical verdict.
        const int fo = node_.failover_target(c.dst_node);
        if (fo < 0) {
            return node_.cfg_.fts.survivor >= 0
                       ? SubmitStatus::kBadTarget
                       : SubmitStatus::kPeerUnreachable;
        }
    }
    // Doorbell timestamp: the command is handed over right here (the
    // push may still fail on a full queue, in which case the whole
    // trace id dies with the rejected command).
    if (c.tid != 0)
        c.t_enqueue = Node::now_ns();
    if (!cmdq_.try_push(std::move(c)))
        return SubmitStatus::kQueueFull;
    // Single-writer backlog counter (load+store, not RMW): ordered
    // before the doorbell by note_command_posted's seq_cst fence, so
    // any proxy that sees the doorbell also sees the new count.
    posted_.store(posted_.load(mp::ord::counter) + 1, mp::ord::counter);
    node_.note_command_posted(id_);
    return SubmitStatus::kOk;
}

SubmitStatus
Endpoint::put(const void* src, int dst_node, uint16_t dst_seg,
              uint64_t dst_off, uint32_t len, Flag* lsync, Flag* rsync)
{
    Command c;
    c.op = Command::Op::kPut;
    c.dst_node = dst_node;
    c.dst_seg = dst_seg;
    c.dst_off = dst_off;
    c.src = src;
    c.len = len;
    c.lsync = lsync;
    c.rsync = rsync;
    return submit(std::move(c));
}

SubmitStatus
Endpoint::get(void* dst, int dst_node, uint16_t dst_seg, uint64_t dst_off,
              uint32_t len, Flag* lsync)
{
    Command c;
    c.op = Command::Op::kGet;
    c.dst_node = dst_node;
    c.dst_seg = dst_seg;
    c.dst_off = dst_off;
    c.dst = dst;
    c.len = len;
    c.lsync = lsync;
    return submit(std::move(c));
}

SubmitStatus
Endpoint::enq(const void* data, uint32_t len, int dst_node, int dst_user,
              Flag* lsync)
{
    if (len > Command::kMaxEnqBytes)
        return SubmitStatus::kTooLarge; // single-packet messages only
    if (dst_user < 0)
        return SubmitStatus::kBadTarget;
    Command c;
    c.op = Command::Op::kEnq;
    c.dst_node = dst_node;
    c.dst_user = dst_user;
    c.len = len;
    c.lsync = lsync;
    if (len > 0)
        std::memcpy(c.inline_data, data, len);
    return submit(std::move(c));
}

bool
Endpoint::try_recv(std::vector<uint8_t>& out)
{
    recv_owner_.assert_owner("Endpoint receive ring (single consumer)");
    return recvq_.try_pop(out);
}

SubmitStatus
Endpoint::rq_enq(const void* data, uint32_t len, int dst_node, int qid,
                 Flag* lsync)
{
    if (len > Command::kMaxEnqBytes)
        return SubmitStatus::kTooLarge;
    if (qid < 0)
        return SubmitStatus::kBadTarget;
    Command c;
    c.op = Command::Op::kRqEnq;
    c.dst_node = dst_node;
    c.dst_user = qid; // queue id rides in the dst_user field
    c.len = len;
    c.lsync = lsync;
    if (len > 0)
        std::memcpy(c.inline_data, data, len);
    return submit(std::move(c));
}

SubmitStatus
Endpoint::rq_deq(void* dst, uint32_t max, int dst_node, int qid,
                 Flag* lsync)
{
    if (qid < 0)
        return SubmitStatus::kBadTarget;
    Command c;
    c.op = Command::Op::kRqDeq;
    c.dst_node = dst_node;
    c.dst_user = qid;
    c.dst = dst;
    c.len = max;
    c.lsync = lsync;
    return submit(std::move(c));
}

// -------------------------------------------------------------------- Node

Node::Node(const NodeConfig& cfg)
    : cfg_(cfg)
{
    MP_CHECK(cfg_.num_proxies >= 1 && cfg_.num_proxies <= 64,
             "num_proxies must be in [1, 64], got " << cfg_.num_proxies);
    MP_CHECK(cfg_.max_endpoints >= 1,
             "max_endpoints must be at least 1");
    obs_enabled_.store(cfg_.obs.enabled, mp::ord::counter);
    comp_budget_ = std::min<size_t>(cfg_.completion_flush,
                                    Proxy::kCompletionSlots);
    // Endpoint table + shard map at full capacity up front: lazy
    // registration publishes into pre-sized structures, so a running
    // proxy never races a reallocation.
    ep_slots_.reset(new std::atomic<Endpoint*>[cfg_.max_endpoints]);
    shard_map_.reset(new std::atomic<uint32_t>[cfg_.max_endpoints]);
    for (size_t e = 0; e < cfg_.max_endpoints; ++e) {
        ep_slots_[e].store(nullptr, mp::ord::counter);
        shard_map_[e].store(
            static_cast<uint32_t>(
                e % static_cast<size_t>(cfg_.num_proxies)),
            mp::ord::counter);
    }
    shard_map_size_ = cfg_.max_endpoints;
    for (int p = 0; p < cfg_.num_proxies; ++p) {
        proxies_.push_back(std::make_unique<Proxy>(
            cfg_.packet_pool_size, cfg_.max_endpoints));
        proxies_.back()->index = p;
        // Rings exist even while tracing is off so set_obs_enabled
        // can flip mid-run: idle rings cost memory, not time.
        proxies_.back()->ring =
            std::make_unique<obs::TraceRing>(cfg_.obs.ring_capacity);
    }
}

Node::~Node()
{
    stop();
    // Quiesce the transport's own threads (socket acceptor) before
    // sweeping link state; the transport object itself outlives the
    // sweeps below, which walk its links.
    if (transport_ != nullptr)
        transport_->stop();
    // Pin every proxy's pool slab to every shared outbound channel
    // before anything is freed: survivors of a crash keep popping
    // (and dereferencing) this node's pooled packets from those
    // rings until their forget_peer sweep drops the channel, so the
    // slab must live exactly as long as the channels do. Every slab
    // goes into every channel because link rebalancing can route any
    // proxy's packets through any port.
    for (auto& pr : proxies_) {
        std::shared_ptr<Packet[]> slab = pr->pool.slab();
        if (slab == nullptr)
            continue;
        for (auto& pr2 : proxies_) {
            for (const TxPort& t : pr2->tx) {
                if (t.ch != nullptr)
                    t.ch->retain(slab);
            }
        }
    }
    // Deferred packets survive stop() so a restarted node resumes
    // them; at destruction, retire the heap-owned ones (pooled ones
    // die with their slab; retained ones belong to their sender's
    // window, possibly on a peer node we must not touch).
    for (auto& pr : proxies_) {
        for (const Deferred& d : pr->deferred) {
            if (d.heap && !d.retained) {
                delete d.p;
            } else if (!d.heap && !d.retained &&
                       d.from.ch != nullptr) {
                // Pooled packet borrowed from a peer's channel:
                // hand it back through the shared return ring so a
                // surviving producer's pool accounting still closes
                // (the ring outlives either end via shared_ptr; the
                // push cannot fail by ret_capacity sizing).
                d.from.ch->ret.try_push(d.p);
            }
        }
        pr->deferred.clear();
        // Custody sweep for the reliability layer, in an order that
        // deletes each heap packet exactly once: return-ring leftovers
        // and reorder stashes skip window-retained packets (tx_state
        // still has kTxRetained — ours, so dereferencing is safe);
        // the window abandon then frees every heap packet it retains.
        for (const TxPort& t : pr->tx) {
            Packet* p = nullptr;
            if (t.ch != nullptr) {
                while (t.ch->ret.try_pop(p)) {
                    if ((p->tx_state & kTxHeap) != 0 &&
                        (p->tx_state & kTxRetained) == 0)
                        delete p;
                }
            } else if (t.io != nullptr) {
                // Socket links hand back every still-borrowed tx
                // packet (queued or recycled) for the same retire.
                while (t.io->reclaim_tx(&p, 1) == 1) {
                    if ((p->tx_state & kTxHeap) != 0 &&
                        (p->tx_state & kTxRetained) == 0)
                        delete p;
                }
            }
        }
        for (Link& lk : pr->links) {
            for (const Link::Stashed& s : lk.stash) {
                if (s.ref.heap &&
                    (s.ref.p->tx_state & kTxRetained) == 0)
                    delete s.ref.p;
            }
            lk.stash.clear();
            lk.win.abandon([](PacketRef h) {
                if (h.heap)
                    delete h.p;
            });
        }
    }
    // Endpoint teardown: graves die with their unique_ptrs; live
    // slots are node-owned raw pointers retired here (no proxies
    // left to hold them).
    for (size_t e = 0; e < ep_count_.load(mp::ord::counter); ++e)
        delete ep_slots_[e].load(mp::ord::counter);
}

Endpoint&
Node::create_endpoint()
{
    std::lock_guard<std::mutex> lk(ep_mu_);
    reclaim_endpoints_locked(); // opportunistic slot recycling
    uint32_t id;
    if (!ep_free_.empty()) {
        id = ep_free_.back();
        ep_free_.pop_back();
    } else {
        const size_t n = ep_count_.load(mp::ord::counter);
        MP_CHECK(n < cfg_.max_endpoints,
                 "endpoint capacity exhausted ("
                     << cfg_.max_endpoints
                     << "): raise NodeConfig::max_endpoints or "
                        "retire endpoints");
        id = static_cast<uint32_t>(n);
    }
    auto* ep = new Endpoint(*this, static_cast<int>(id),
                            cfg_.cmd_queue_depth, cfg_.recv_ring_bytes);
    // Reused ids rejoin at the static rule; the release publishes
    // below order both stores before any proxy's acquire of the
    // slot (or of the grown count, for the scan-all walk).
    shard_map_[id].store(
        static_cast<uint32_t>(id) %
            static_cast<uint32_t>(cfg_.num_proxies),
        mp::ord::publish);
    ep_slots_[id].store(ep, mp::ord::publish);
    const size_t n = ep_count_.load(mp::ord::counter);
    if (id == n)
        ep_count_.store(n + 1, mp::ord::publish);
    return *ep;
}

void
Node::retire_endpoint(Endpoint& ep)
{
    const auto id = static_cast<uint32_t>(ep.id());
    MP_CHECK(static_cast<size_t>(id) < cfg_.max_endpoints &&
                 endpoint_at(id) == &ep,
             "retire_endpoint: endpoint " << ep.id()
                                          << " is not live on this node");
    {
        std::lock_guard<std::mutex> lk(ep_mu_);
        if (ep.retired_.load(mp::ord::counter))
            return; // idempotent
        ep.retired_.store(true, mp::ord::publish);
        ep_retired_.push_back(id);
    }
    // Nudge the owner so a parked backlog drains toward
    // posted_ == drained_ even if no doorbell is outstanding.
    if (cfg_.poll_mode == PollMode::kBitVector &&
        running_.load(mp::ord::observe))
        proxies_[static_cast<size_t>(endpoint_owner(
                     static_cast<int>(id)))]
            ->bell.ring(id);
}

size_t
Node::reclaim_endpoints()
{
    std::lock_guard<std::mutex> lk(ep_mu_);
    return reclaim_endpoints_locked();
}

size_t
Node::reclaim_endpoints_locked()
{
    // Phase B: retired endpoints whose backlog drained leave the
    // slot table. The release RMW on ep_gen_ orders the slot null
    // before the generation bump, so a proxy that acknowledges
    // generation >= G read the null slot for every endpoint buried
    // at G or earlier.
    for (size_t i = 0; i < ep_retired_.size();) {
        const uint32_t id = ep_retired_[i];
        Endpoint* ep = ep_slots_[id].load(mp::ord::counter);
        if (ep == nullptr) { // defensive: already buried
            ep_retired_.erase(ep_retired_.begin() +
                              static_cast<long>(i));
            continue;
        }
        if (ep->posted_.load(mp::ord::counter) !=
            ep->drained_.load(mp::ord::counter)) {
            ++i; // backlog still draining
            continue;
        }
        ep_slots_[id].store(nullptr, mp::ord::publish);
        const uint64_t gen =
            ep_gen_.fetch_add(1, mp::ord::handoff) + 1;
        ep_graves_.push_back(
            EpGrave{std::unique_ptr<Endpoint>(ep), gen});
        // The id is reusable the moment the slot is null: no new
        // traffic can reach the buried object through it, and a
        // proxy still holding the stale pointer only inspects the
        // (alive, grave-owned) object itself — it never maps the id
        // back. Only the memory waits for the generation acks.
        ep_free_.push_back(id);
        ep_retired_.erase(ep_retired_.begin() + static_cast<long>(i));
    }
    // Phase C: free graves every proxy acknowledged (or all of them
    // while the proxies are stopped — no thread can hold a stale
    // pointer across a join).
    const bool live = running_.load(mp::ord::observe);
    size_t freed = 0;
    for (size_t i = 0; i < ep_graves_.size();) {
        const EpGrave& g = ep_graves_[i];
        bool acked = true;
        if (live) {
            for (const auto& pr : proxies_) {
                if (pr->ep_gen_seen.load(mp::ord::observe) < g.gen) {
                    acked = false;
                    break;
                }
            }
        }
        if (!acked) {
            ++i;
            continue;
        }
        ep_graves_.erase(ep_graves_.begin() + static_cast<long>(i));
        ++freed;
    }
    return freed;
}

size_t
Node::endpoint_count() const
{
    std::lock_guard<std::mutex> lk(ep_mu_);
    size_t n = 0;
    for (size_t e = 0; e < ep_count_.load(mp::ord::counter); ++e) {
        if (ep_slots_[e].load(mp::ord::counter) != nullptr)
            ++n;
    }
    return n;
}

int
Node::create_queue()
{
    MP_CHECK(!running_.load(mp::ord::observe),
             "queues must be created before Node::start()");
    rqueues_.emplace_back();
    return static_cast<int>(rqueues_.size()) - 1;
}

net::Transport&
Node::ensure_transport()
{
    std::lock_guard<std::mutex> lk(wiring_mu_);
    if (transport_ == nullptr) {
        net::TransportParams tp;
        tp.node_id = cfg_.id;
        tp.num_proxies = cfg_.num_proxies;
        tp.channel_depth = cfg_.channel_depth;
        // Return-ring sizing: everything routed back to a producer
        // is bounded by its pool (pooled packets) plus its unacked
        // window (retained heap-fallback packets also route through
        // the return ring so the sender can clear their in-flight
        // bit), so pushes can never fail.
        tp.ret_capacity =
            cfg_.packet_pool_size +
            (cfg_.reliability.enabled ? cfg_.reliability.window
                                      : 0) +
            64;
        tp.reliability = cfg_.reliability.enabled;
        tp.epoch = cfg_.epoch;
        transport_ = net::make_transport(cfg_.transport, tp, this);
    }
    return *transport_;
}

void
Node::on_peer_wired(int peer_node, int peer_proxies, uint64_t epoch)
{
    std::lock_guard<std::mutex> lk(wiring_mu_);
    MP_CHECK(!running_.load(mp::ord::observe),
             "peer wiring must complete before Node::start()");
    auto n = static_cast<size_t>(peer_node);
    if (peer_proxies_.size() <= n)
        peer_proxies_.resize(n + 1, 0);
    if (peer_dead_.size() <= n) {
        peer_dead_.resize(n + 1);
        peer_state_.resize(n + 1);
        failover_.resize(n + 1);
        blackhole_.resize(n + 1);
        peer_epoch_.resize(n + 1, 0);
    }
    if (peer_dead_[n] == nullptr) {
        peer_dead_[n] = std::make_unique<std::atomic<bool>>(false);
        peer_state_[n] = std::make_unique<std::atomic<uint8_t>>(0);
        failover_[n] = std::make_unique<std::atomic<int32_t>>(-1);
        blackhole_[n] = std::make_unique<std::atomic<bool>>(false);
    }
    // Epoch rules: first wiring and higher-epoch rejoins (a restarted
    // incarnation) are accepted — a rejoin revives the peer (clears
    // the dead/suspect verdict and may change its proxy count). A
    // stale lower epoch is wiring from a pre-crash incarnation.
    MP_CHECK(epoch >= peer_epoch_[n],
             "peer " << peer_node << " wired with stale epoch "
                     << epoch << " < " << peer_epoch_[n]);
    if (epoch > peer_epoch_[n]) {
        peer_epoch_[n] = epoch;
        peer_proxies_[n] = peer_proxies;
        peer_dead_[n]->store(false, mp::ord::publish);
        peer_state_[n]->store(
            static_cast<uint8_t>(net::PeerState::kAlive),
            mp::ord::publish);
        failover_[n]->store(-1, mp::ord::publish);
        blackhole_[n]->store(false, mp::ord::publish);
    } else {
        // Same epoch (another link of the same incarnation): the
        // proxy count must agree.
        MP_CHECK(peer_proxies_[n] == peer_proxies,
                 "peer " << peer_node
                         << " changed proxy count across wiring");
    }
}

void
Node::listen(const std::string& addr)
{
    MP_CHECK(!running_.load(mp::ord::observe),
             "listen before start");
    const net::Addr a = net::Addr::parse(addr);
    MP_CHECK(a.kind() == cfg_.transport,
             "address '" << addr
                         << "' does not match NodeConfig::transport");
    ensure_transport().listen(a);
}

void
Node::connect(const std::string& addr)
{
    MP_CHECK(!running_.load(mp::ord::observe),
             "connect before start");
    const net::Addr a = net::Addr::parse(addr);
    MP_CHECK(a.kind() == cfg_.transport,
             "address '" << addr
                         << "' does not match NodeConfig::transport");
    ensure_transport().connect(a);
}

void
Node::connect(Node& a, Node& b)
{
    // Legacy two-node shim over the in-process transport; new code
    // wires through listen()/connect() addresses instead.
    MP_CHECK(!a.running_.load() && !b.running_.load(),
             "connect before start");
    MP_CHECK(a.cfg_.transport == net::TransportKind::kInProc &&
                 b.cfg_.transport == net::TransportKind::kInProc,
             "Node::connect(Node&, Node&) only wires the in-process "
             "transport; use listen()/connect() with addresses");
    auto& ta = static_cast<net::InProcTransport&>(a.ensure_transport());
    auto& tb = static_cast<net::InProcTransport&>(b.ensure_transport());
    net::InProcTransport::wire_pair(ta, tb);
}

void
Node::start()
{
    MP_CHECK(!running_.load(), "node already started");
    const auto P = static_cast<size_t>(cfg_.num_proxies);
    const auto self_row = static_cast<size_t>(cfg_.id);
    // Cross-proxy loopback rings (a proxy serves itself directly, so
    // the diagonal stays null), flattened producer-major. Idempotent
    // across stop()/start().
    if (P > 1 && loop_.empty()) {
        loop_.resize(P * P);
        for (size_t p = 0; p < P; ++p) {
            for (size_t q = 0; q < P; ++q) {
                if (p == q)
                    continue;
                loop_[p * P + q] = std::make_shared<Channel>(
                    cfg_.channel_depth, cfg_.packet_pool_size + 64);
            }
        }
    }
    // Per-proxy receive and transmit lists: every port whose
    // consumer (rx) or producer (tx) end this proxy owns — the
    // loopback matrix plus this proxy's transport links. tx is the
    // set of return paths the proxy drains to refill its packet
    // pool. Transport links additionally get a Link carrying the
    // sequence/ack/retransmit state of the (this proxy, peer proxy)
    // pair — created on first sight and kept across stop()/start(),
    // because sequence counters must survive a restart exactly like
    // the transport's channels do.
    for (auto& pr : proxies_) {
        const auto me = static_cast<size_t>(pr->index);
        pr->rx.clear();
        pr->tx.clear();
        if (!loop_.empty()) {
            for (size_t sp = 0; sp < P; ++sp) {
                Channel* ch = loop_[sp * P + me].get();
                if (ch != nullptr)
                    pr->rx.push_back(
                        RxEntry{RxPort{ch, nullptr}, nullptr});
            }
            for (size_t q = 0; q < P; ++q) {
                Channel* ch = loop_[me * P + q].get();
                if (ch != nullptr)
                    pr->tx.push_back(TxPort{ch, nullptr});
            }
        }
        if (transport_ != nullptr) {
            std::vector<net::TransportLink*> ios;
            transport_->links_for(pr->index, ios);
            for (net::TransportLink* io : ios) {
                const auto n = static_cast<size_t>(io->peer_node());
                const auto q = static_cast<size_t>(io->peer_proxy());
                if (pr->link_by_node.size() <= n)
                    pr->link_by_node.resize(n + 1);
                auto& lrow = pr->link_by_node[n];
                const auto peer_p =
                    static_cast<size_t>(peer_proxies_[n]);
                if (lrow.size() < peer_p)
                    lrow.resize(peer_p, nullptr);
                if (lrow[q] == nullptr) {
                    // Salt decorrelates the fault streams of every
                    // (node, node, proxy, proxy) channel under one
                    // shared plan seed.
                    uint64_t salt =
                        (static_cast<uint64_t>(cfg_.id + 1) << 48) ^
                        (static_cast<uint64_t>(n + 1) << 32) ^
                        ((me + 1) << 16) ^ (q + 1);
                    pr->links.emplace_back(
                        static_cast<int>(n), static_cast<int>(q),
                        cfg_.reliability, cfg_.fault_plan, salt);
                    lrow[q] = &pr->links.back();
                }
                Link& lk = *lrow[q];
                // chan_out()/chan_in() devirtualize the in-process
                // backend (direct ring ops); socket links leave them
                // null and route through the virtual hooks.
                lk.out = TxPort{io->chan_out(), io};
                // Liveness clocks start at "just heard from": the
                // detector only suspects a peer that stays silent
                // for suspect_after intervals from here on.
                lk.fts.reset(now_ns());
                // Cache the peer's partition switch (chaos hook).
                lk.bh = (n < blackhole_.size() &&
                         blackhole_[n] != nullptr)
                            ? blackhole_[n].get()
                            : nullptr;
                pr->rx.push_back(
                    RxEntry{RxPort{io->chan_in(), io}, &lk});
                pr->tx.push_back(lk.out);
            }
        }
        // Routing table: out_by_node[n][q] is the port toward proxy
        // q of node n (row cfg_.id = loopback, null diagonal).
        pr->out_by_node.clear();
        pr->out_by_node.resize(std::max(pr->link_by_node.size(),
                                        self_row + 1));
        if (!loop_.empty()) {
            auto& lrow = pr->out_by_node[self_row];
            lrow.resize(P);
            for (size_t q = 0; q < P; ++q) {
                if (q != me)
                    lrow[q] = TxPort{loop_[me * P + q].get(), nullptr};
            }
        }
        for (size_t n = 0; n < pr->link_by_node.size(); ++n) {
            auto& lrow = pr->link_by_node[n];
            if (lrow.empty() || n == self_row)
                continue;
            auto& orow = pr->out_by_node[n];
            orow.resize(lrow.size());
            for (size_t q = 0; q < lrow.size(); ++q) {
                if (lrow[q] != nullptr)
                    orow[q] = lrow[q]->out;
            }
        }
    }
    io_pump_ = (transport_ != nullptr && transport_->needs_pump())
                   ? transport_.get()
                   : nullptr;
    // The endpoint->proxy indirection table is pre-sized to
    // cfg_.max_endpoints at construction (lazy registration needs
    // it immutable while proxies run); ownership survives a
    // stop()/start() cycle in place.
    // Resolve proxy-thread CPUs once (first start()): explicit list
    // or NUMA-grouped auto-reservation; single-CPU hosts never pin.
    if (pinned_cpus_.empty() &&
        cfg_.placement.pin != NodeConfig::Placement::Pin::kNone) {
        if (cfg_.placement.pin == NodeConfig::Placement::Pin::kExplicit)
            pinned_cpus_ = cfg_.placement.proxy_cpus;
        else if (topo::Topology::get().ncpu > 1)
            pinned_cpus_ = topo::reserve_cpus(cfg_.num_proxies);
    }
    for (auto& pr : proxies_) {
        if (!pinned_cpus_.empty())
            pr->pin_cpu = pinned_cpus_[static_cast<size_t>(pr->index) %
                                       pinned_cpus_.size()];
        if (!cfg_.placement.numa_first_touch)
            pr->pool.build(); // historical behavior: build here
        if (pr->index == 0 && cfg_.rebalance.enabled)
            pr->rebal_seen.resize(cfg_.max_endpoints, 0);
    }
    running_.store(true, mp::ord::publish);
    for (auto& pr : proxies_)
        pr->thread = std::thread([this, p = pr.get()] { proxy_main(*p); });
}

void
Node::stop()
{
    // ep_mu_ spans the flag flip and the joins so endpoint
    // reclamation (phase C under the same mutex) can trust a false
    // running_: by then the proxy threads are truly gone, not
    // mid-final-iteration.
    std::lock_guard<std::mutex> lk(ep_mu_);
    if (!running_.exchange(false))
        return;
    for (auto& pr : proxies_) {
        if (pr->thread.joinable()) {
            pr->thread.join();
            pr->owner.release(); // a restarted proxy thread re-binds
        }
    }
    // The consumer threads are gone: unbind every command queue's
    // consumer role so the next start()'s proxies (possibly
    // different OS threads) re-bind cleanly.
    for (size_t e = 0; e < ep_count_.load(mp::ord::counter); ++e) {
        Endpoint* ep = ep_slots_[e].load(mp::ord::counter);
        if (ep != nullptr)
            ep->cmdq_.release_consumer();
    }
}

void
Node::forget_peer(int node)
{
    MP_CHECK(!running_.load(mp::ord::observe),
             "forget_peer requires a stopped node");
    const auto n = static_cast<size_t>(node);
    if (n >= peer_dead_.size() || peer_dead_[n] == nullptr)
        return; // never wired: nothing to forget
    const uint64_t now = now_ns();
    for (auto& prp : proxies_) {
        Proxy& pr = *prp;
        // (1) Parked arrivals FROM the dead peer, identified by
        // receive port — never by dereference: pooled storage died
        // with the peer's slab, and its window-retained heap packets
        // were deleted by its own teardown sweep. Only a packet the
        // peer fully handed over (heap, unretained) is still valid,
        // and ours to retire.
        auto from_dead = [&](const RxPort& f) {
            if (f.ch == nullptr && f.io == nullptr)
                return false; // our own packet (loopback)
            for (const RxEntry& rxe : pr.rx) {
                if (rxe.link != nullptr &&
                    rxe.link->peer_node == node &&
                    rxe.port.ch == f.ch && rxe.port.io == f.io)
                    return true;
            }
            return false;
        };
        for (size_t i = 0; i < pr.deferred.size();) {
            Deferred& d = pr.deferred[i];
            if (!from_dead(d.from)) {
                ++i;
                continue;
            }
            if (d.heap && !d.retained) {
                delete d.p;
                ++pr.local.heap_frees;
            }
            d = pr.deferred.back();
            pr.deferred.pop_back();
        }
        for (Link& lk : pr.links) {
            if (lk.peer_node != node)
                continue;
            // (2) Returned custody: everything the dead consumer
            // handed back through the return ring, or the socket
            // surrendered at close (reclaim_tx). recycle_tx applies
            // the tx_state custody rules throughout this sweep:
            // window-retained packets only shed their in-flight bit
            // here, so the abandon below releases each exactly once.
            Packet* p = nullptr;
            if (lk.out.ch != nullptr) {
                while (lk.out.ch->ret.try_pop(p))
                    recycle_tx(pr, p);
            } else if (lk.out.io != nullptr) {
                while (lk.out.io->reclaim_tx(&p, 1) == 1)
                    recycle_tx(pr, p);
            }
            // (3) Sends the dead peer never consumed, still queued
            // in the forward ring (in-process only: a socket's
            // queued frames came back via reclaim_tx above).
            if (lk.out.ch != nullptr) {
                PacketRef r;
                while (lk.out.ch->ring.try_pop(r))
                    recycle_tx(pr, r.p);
            }
            // (4) Reorder-injected sends parked in the stash.
            for (const Link::Stashed& s : lk.stash)
                recycle_tx(pr, s.ref.p);
            lk.stash.clear();
            // (5) The unacked window: after (2)-(4) none of its
            // packets is in flight anywhere, so the kill_link
            // custody walk releases each exactly once.
            lk.win.abandon([&](PacketRef h) {
                h.p->tx_state &= static_cast<uint8_t>(~kTxRetained);
                if ((h.p->tx_state & kTxInFlight) == 0)
                    release_packet(pr, PacketRef{h.p, h.heap, false},
                                   nullptr);
            });
        }
        // (6) Arrivals the proxy never popped. Same custody split as
        // the deferred purge; socket in-ports are skipped — their rx
        // slabs belong to the transport link and are freed wholesale
        // at transport destruction.
        for (const RxEntry& rxe : pr.rx) {
            if (rxe.link == nullptr || rxe.link->peer_node != node ||
                rxe.port.ch == nullptr)
                continue;
            PacketRef r;
            while (rxe.port.ch->ring.try_pop(r)) {
                if (r.heap && !r.retained) {
                    delete r.p;
                    ++pr.local.heap_frees;
                }
            }
        }
        // (7) Requests still awaiting the dead peer's reply.
        fail_ccbs(pr, node);
        // (8) Drop the peer's ports from the drain lists so
        // quiesce_returns and teardown never touch channels the
        // transport is about to free.
        pr.rx.erase(std::remove_if(pr.rx.begin(), pr.rx.end(),
                                   [&](const RxEntry& rxe) {
                                       return rxe.link != nullptr &&
                                              rxe.link->peer_node ==
                                                  node;
                                   }),
                    pr.rx.end());
        pr.tx.erase(std::remove_if(
                        pr.tx.begin(), pr.tx.end(),
                        [&](const TxPort& t) {
                            for (const Link& lk : pr.links) {
                                if (lk.peer_node == node &&
                                    lk.out.valid() &&
                                    t.ch == lk.out.ch &&
                                    t.io == lk.out.io)
                                    return true;
                            }
                            return false;
                        }),
                    pr.tx.end());
        if (n < pr.out_by_node.size()) {
            for (TxPort& t : pr.out_by_node[n])
                t = TxPort{};
        }
        // (9) Reset protocol state for the peer's next incarnation:
        // fresh sequence spaces on both sides (a restarted node
        // starts its receiver at seq 1), fresh liveness clocks, and
        // no port until start() re-wires. The Link objects stay in
        // place — link_by_node still points at them — so a rejoin
        // reuses them exactly like a plain stop()/start() cycle.
        for (Link& lk : pr.links) {
            if (lk.peer_node != node)
                continue;
            lk.win = net::SenderWindow<PacketRef>(cfg_.reliability);
            lk.rseq = net::ReceiverSeq{};
            lk.dead = false;
            lk.fts.reset(now);
            lk.out = TxPort{};
        }
        publish_stats(pr);
    }
    // (10) Let the transport drop its half: in-process channel
    // matrices (our shared_ptrs kept them valid through the sweeps
    // above), or socket fds. Then clear the node-level verdicts so a
    // higher-epoch rejoin starts clean. peer_epoch_ is deliberately
    // NOT reset: it is the monotone clock that rejects wiring
    // attempts from pre-crash incarnations.
    if (transport_ != nullptr)
        transport_->forget_peer(node);
    {
        std::lock_guard<std::mutex> wl(wiring_mu_);
        peer_proxies_[n] = 0; // not a valid target until re-wired
        peer_dead_[n]->store(false, mp::ord::publish);
        peer_state_[n]->store(
            static_cast<uint8_t>(net::PeerState::kAlive),
            mp::ord::publish);
        failover_[n]->store(-1, mp::ord::publish);
        blackhole_[n]->store(false, mp::ord::publish);
    }
}

void
Node::quiesce_returns()
{
    MP_CHECK(!running_.load(mp::ord::observe),
             "quiesce_returns requires a stopped node");
    for (auto& pr : proxies_) {
        drain_returns(*pr);
        publish_stats(*pr);
    }
}

void
Node::setup_proxy_thread(Proxy& self)
{
    if (self.pin_cpu >= 0)
        topo::pin_self_to_cpu(self.pin_cpu);
    // First-touch the packet slab from the (now pinned) proxy
    // thread so its pages allocate on this proxy's NUMA node.
    // Idempotent: a restarted proxy keeps its slab.
    self.pool.build();
}

void
Node::migrate_endpoint(int ep, int to)
{
    if (ep < 0 || endpoint_at(static_cast<size_t>(ep)) == nullptr ||
        to < 0 || to >= cfg_.num_proxies)
        return;
    const int owner = endpoint_owner(ep);
    if (owner == to)
        return;
    post_migration(owner, ep, to);
}

void
Node::post_migration(int owner, int ep, int to)
{
    Proxy& pr = *proxies_[static_cast<size_t>(owner)];
    {
        std::lock_guard<std::mutex> lk(pr.mig_mu);
        pr.mig_orders.push_back(Proxy::MigrationOrder{ep, to});
    }
    // Hint flag only: the mutex above is the actual synchronization
    // for the order data; a stale 0 read just delays pickup one loop.
    pr.mig_pending.store(1, mp::ord::counter);
}

void
Node::process_migrations(Proxy& self)
{
    // Clear the hint before swapping the orders out: an order posted
    // after the swap re-raises it, so nothing is lost — at worst one
    // extra (empty) pass.
    self.mig_pending.store(0, mp::ord::counter);
    std::vector<Proxy::MigrationOrder> orders;
    {
        std::lock_guard<std::mutex> lk(self.mig_mu);
        orders.swap(self.mig_orders);
    }
    for (const Proxy::MigrationOrder& o : orders) {
        if (o.ep < 0 ||
            static_cast<size_t>(o.ep) >= shard_map_size_ ||
            o.to < 0 || o.to >= cfg_.num_proxies)
            continue;
        const int owner = endpoint_owner(o.ep);
        if (owner == o.to)
            continue; // already there (duplicate / stale order)
        if (owner != self.index) {
            // Ownership moved since the order was posted: re-route
            // the order to the current owner.
            post_migration(owner, o.ep, o.to);
            continue;
        }
        Endpoint* epp = endpoint_at(static_cast<size_t>(o.ep));
        if (epp == nullptr)
            continue; // retired and reclaimed since the order
        Endpoint& ep = *epp;
        // Quiesce: a bounded courtesy drain of the backlog. The ring
        // hands over wholesale (FIFO intact), so whatever remains is
        // simply drained by the new owner after the publish below.
        for (uint32_t i = 0; i < cfg_.cmd_burst; ++i) {
            Command cmd;
            if (!ep.cmdq_.try_pop(cmd))
                break;
            handle_command(self, ep, cmd);
        }
        // Hand the ring's consumer role to the new owner before it
        // can legally touch the queue (ownership-checked builds
        // assert on empty()/try_pop from a non-consumer thread).
        ep.cmdq_.release_consumer();
        // Handoff: publish the new owner, then unconditionally set
        // the new owner's doorbell bit. The release RMW orders the
        // shard_map store before the bit for whoever consumes it, so
        // the new owner that takes this bit also sees itself as
        // owner; our own future scans skip the endpoint and forward
        // any stale doorbell instead.
        shard_map_[static_cast<size_t>(o.ep)].store(
            static_cast<uint32_t>(o.to), mp::ord::publish);
        if (cfg_.poll_mode == PollMode::kBitVector) {
            proxies_[static_cast<size_t>(o.to)]->bell.ring_sync(
                static_cast<size_t>(o.ep));
        }
        ++self.local.migrations;
    }
}

void
Node::maybe_rebalance(Proxy& self)
{
    const auto P = static_cast<size_t>(cfg_.num_proxies);
    const size_t ecount = ep_count_.load(mp::ord::observe);
    if (P < 2 || ecount == 0)
        return;
    if (self.rebal_seen.size() < ecount)
        self.rebal_seen.resize(cfg_.max_endpoints, 0);
    // Window deltas of the per-endpoint drain counters, accumulated
    // per owning proxy: the load picture since the last pass.
    // Reclaimed slots are skipped (a reused id restarts its baseline
    // at whatever the previous incarnation left — one window of
    // noise at most).
    std::vector<uint64_t> load(P, 0);
    std::vector<uint64_t> delta(ecount, 0);
    for (size_t e = 0; e < ecount; ++e) {
        const Endpoint* ep = endpoint_at(e);
        if (ep == nullptr)
            continue;
        const uint64_t d = ep->drained_.load(mp::ord::counter);
        delta[e] = d - self.rebal_seen[e];
        self.rebal_seen[e] = d;
        load[static_cast<size_t>(endpoint_owner(
            static_cast<int>(e)))] += delta[e];
    }
    const NodeConfig::Rebalance& rb = cfg_.rebalance;
    for (uint32_t move = 0; move < rb.max_moves; ++move) {
        size_t busiest = 0, coolest = 0;
        for (size_t p = 1; p < P; ++p) {
            if (load[p] > load[busiest])
                busiest = p;
            if (load[p] < load[coolest])
                coolest = p;
        }
        if (load[busiest] < rb.min_cmds)
            return; // nobody is actually busy
        if (static_cast<double>(load[busiest]) <
            rb.min_ratio * static_cast<double>(load[coolest]))
            return; // balanced enough
        // Steal the hottest endpoint that fits strictly inside the
        // gap, so the move shrinks the imbalance instead of flipping
        // it.
        const uint64_t gap = load[busiest] - load[coolest];
        size_t pick = ecount;
        for (size_t e = 0; e < ecount; ++e) {
            if (delta[e] == 0 || delta[e] >= gap)
                continue;
            if (endpoint_owner(static_cast<int>(e)) !=
                static_cast<int>(busiest))
                continue;
            if (pick == ecount || delta[e] > delta[pick])
                pick = e;
        }
        if (pick == ecount)
            return; // one giant endpoint: moving it cannot help
        post_migration(static_cast<int>(busiest),
                       static_cast<int>(pick),
                       static_cast<int>(coolest));
        load[busiest] -= delta[pick];
        load[coolest] += delta[pick];
        delta[pick] = 0;
    }
}

NodeStats
Node::read_proxy_stats(const ProxyStats& ps)
{
    NodeStats s;
    for (const StatField& f : kStatFields)
        s.*f.v = (ps.*f.a).load(mp::ord::counter);
    return s;
}

NodeStats
Node::stats() const
{
    NodeStats s;
    for (const auto& pr : proxies_)
        accumulate_stats(s, read_proxy_stats(pr->stats));
    return s;
}

NodeSnapshot
Node::stats_snapshot() const
{
    NodeSnapshot snap;
    snap.node = cfg_.id;
    snap.ts_ns = now_ns();
    snap.obs_enabled = obs_on();
    for (const auto& pr : proxies_) {
        snap.per_proxy.push_back(read_proxy_stats(pr->stats));
        accumulate_stats(snap.totals, snap.per_proxy.back());
        snap.trace_recorded += pr->ring->recorded();
        snap.trace_drops += pr->ring->drops();
        snap.trace_capacity += pr->ring->capacity();
    }
    for (int k = 0; k < obs::kNumOps; ++k) {
        OpLatency ol;
        ol.op = obs::op_name(static_cast<obs::OpKind>(k));
        for (const auto& pr : proxies_) {
            const obs::Log2Hist& h = pr->op_hist[k];
            h.merge_into(ol.buckets);
            ol.count += h.total();
            ol.max_ns = std::max(ol.max_ns, h.max());
        }
        if (ol.count == 0)
            continue;
        finish_latency(ol);
        snap.op_latency.push_back(ol);
    }
    snap.batch.op = "batch";
    for (const auto& pr : proxies_) {
        pr->batch_hist.merge_into(snap.batch.buckets);
        snap.batch.count += pr->batch_hist.total();
        snap.batch.max_ns =
            std::max(snap.batch.max_ns, pr->batch_hist.max());
    }
    if (snap.batch.count > 0)
        finish_latency(snap.batch);
    for (const NodeStats& ps : snap.per_proxy)
        snap.utilization.push_back(
            ps.polls > 0 ? static_cast<double>(ps.busy_polls) /
                               static_cast<double>(ps.polls)
                         : 0.0);
    snap.endpoints_owned.assign(snap.per_proxy.size(), 0);
    const size_t ecount = ep_count_.load(mp::ord::observe);
    for (size_t e = 0; e < ecount; ++e) {
        if (endpoint_at(e) == nullptr)
            continue; // retired slot
        const auto p = static_cast<size_t>(
            endpoint_owner(static_cast<int>(e)));
        if (p < snap.endpoints_owned.size())
            ++snap.endpoints_owned[p];
    }
    for (const auto& pr : proxies_) {
        NodeSnapshot::DoorbellStats& db = snap.doorbell;
        db.levels = std::max(db.levels, pr->bell.levels());
        db.rings.resize(static_cast<size_t>(db.levels), 0);
        db.consumes.resize(static_cast<size_t>(db.levels), 0);
        for (int l = 0; l < pr->bell.levels(); ++l) {
            db.rings[static_cast<size_t>(l)] += pr->bell.rings(l);
            db.consumes[static_cast<size_t>(l)] +=
                pr->bell.consumes(l);
        }
    }
    snap.peer_state.assign(peer_state_.size(), 0);
    for (size_t n = 0; n < peer_state_.size(); ++n) {
        if (peer_state_[n] != nullptr)
            snap.peer_state[n] =
                peer_state_[n]->load(mp::ord::observe);
    }
    return snap;
}

void
Node::dump_json(std::ostream& os) const
{
    const NodeSnapshot snap = stats_snapshot();
    os << "{\"node\":" << snap.node << ",\"ts_ns\":" << snap.ts_ns
       << ",\"obs_enabled\":" << (snap.obs_enabled ? "true" : "false");
    auto counters = [&os](const NodeStats& s) {
        os << "{";
        bool first = true;
        for (const StatField& f : kStatFields) {
            if (!first)
                os << ",";
            first = false;
            os << "\"" << f.name << "\":" << s.*f.v;
        }
        os << "}";
    };
    os << ",\"counters\":";
    counters(snap.totals);
    os << ",\"per_proxy\":[";
    for (size_t p = 0; p < snap.per_proxy.size(); ++p) {
        if (p > 0)
            os << ",";
        counters(snap.per_proxy[p]);
    }
    os << "],\"op_latency_ns\":[";
    for (size_t i = 0; i < snap.op_latency.size(); ++i) {
        if (i > 0)
            os << ",";
        latency_json(os, snap.op_latency[i]);
    }
    os << "],\"batch\":";
    latency_json(os, snap.batch);
    os << ",\"utilization\":[";
    for (size_t p = 0; p < snap.utilization.size(); ++p) {
        if (p > 0)
            os << ",";
        obs::json_num(os, snap.utilization[p]);
    }
    os << "],\"endpoints_owned\":[";
    for (size_t p = 0; p < snap.endpoints_owned.size(); ++p) {
        if (p > 0)
            os << ",";
        os << snap.endpoints_owned[p];
    }
    os << "],\"doorbell\":{\"levels\":" << snap.doorbell.levels
       << ",\"rings\":[";
    for (size_t l = 0; l < snap.doorbell.rings.size(); ++l) {
        if (l > 0)
            os << ",";
        os << snap.doorbell.rings[l];
    }
    os << "],\"consumes\":[";
    for (size_t l = 0; l < snap.doorbell.consumes.size(); ++l) {
        if (l > 0)
            os << ",";
        os << snap.doorbell.consumes[l];
    }
    os << "]},\"trace\":{\"recorded\":" << snap.trace_recorded
       << ",\"drops\":" << snap.trace_drops
       << ",\"capacity\":" << snap.trace_capacity << "}}";
}

std::vector<obs::TraceEvent>
Node::trace_snapshot() const
{
    std::vector<obs::TraceEvent> out;
    for (const auto& pr : proxies_)
        pr->ring->snapshot(out);
    std::sort(out.begin(), out.end(),
              [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                  return a.ts_ns < b.ts_ns;
              });
    return out;
}

uint64_t
Node::trace_recorded() const
{
    uint64_t n = 0;
    for (const auto& pr : proxies_)
        n += pr->ring->recorded();
    return n;
}

uint64_t
Node::trace_drops() const
{
    uint64_t n = 0;
    for (const auto& pr : proxies_)
        n += pr->ring->drops();
    return n;
}

void
Node::export_chrome_trace(std::ostream& os,
                          const std::vector<const Node*>& ns)
{
    std::vector<obs::NodeTrace> traces;
    traces.reserve(ns.size());
    for (const Node* n : ns)
        traces.push_back(obs::NodeTrace{n->id(), n->trace_snapshot()});
    obs::write_chrome_trace(os, traces);
}

bool
Node::peer_unreachable(int node) const
{
    return node >= 0 &&
           static_cast<size_t>(node) < peer_dead_.size() &&
           peer_dead_[static_cast<size_t>(node)] != nullptr &&
           peer_dead_[static_cast<size_t>(node)]->load(
               mp::ord::observe);
}

net::PeerState
Node::peer_state(int node) const
{
    if (node < 0 || static_cast<size_t>(node) >= peer_state_.size() ||
        peer_state_[static_cast<size_t>(node)] == nullptr)
        return net::PeerState::kAlive;
    return static_cast<net::PeerState>(
        peer_state_[static_cast<size_t>(node)]->load(
            mp::ord::observe));
}

int
Node::failover_target(int node) const
{
    if (node < 0 || static_cast<size_t>(node) >= failover_.size() ||
        failover_[static_cast<size_t>(node)] == nullptr)
        return -1;
    return failover_[static_cast<size_t>(node)]->load(
        mp::ord::observe);
}

void
Node::set_peer_blackhole(int node, bool on)
{
    if (node < 0 || static_cast<size_t>(node) >= blackhole_.size() ||
        blackhole_[static_cast<size_t>(node)] == nullptr)
        return;
    blackhole_[static_cast<size_t>(node)]->store(on,
                                                 mp::ord::publish);
}

void
Node::declare_peer_dead(int node)
{
    const auto n = static_cast<size_t>(node);
    if (node < 0 || n >= peer_state_.size() ||
        peer_state_[n] == nullptr)
        return;
    const uint8_t prev = peer_state_[n]->exchange(
        static_cast<uint8_t>(net::PeerState::kDead),
        mp::ord::handoff);
    if (prev == static_cast<uint8_t>(net::PeerState::kDead))
        return; // somebody else won the race: exactly-once edge
    // Resolve the failover target once, at death time: configured,
    // in range, not ourselves, and itself not already dead.
    const int fo = cfg_.fts.survivor;
    if (fo >= 0 && fo != node && fo != cfg_.id && valid_target(fo) &&
        !peer_unreachable(fo))
        failover_[n]->store(fo, mp::ord::publish);
    peer_dead_[n]->store(true, mp::ord::publish);
    // Wake every proxy's link sweep (one relaxed load per loop on
    // the hot path; the sweep itself runs only on a change).
    peer_dead_gen_.fetch_add(1, mp::ord::publish);
    if (peer_cb_)
        peer_cb_(node, net::PeerState::kDead);
}

void
Node::note_peer_suspect(int node, bool suspected)
{
    const auto n = static_cast<size_t>(node);
    if (node < 0 || n >= peer_state_.size() ||
        peer_state_[n] == nullptr)
        return;
    uint8_t from = static_cast<uint8_t>(
        suspected ? net::PeerState::kAlive : net::PeerState::kSuspect);
    uint8_t to = static_cast<uint8_t>(
        suspected ? net::PeerState::kSuspect : net::PeerState::kAlive);
    // CAS so a dead verdict is never overwritten and the callback
    // fires once per edge even with several proxies assessing.
    if (peer_state_[n]->compare_exchange_strong(from, to,
                                                mp::ord::handoff,
                                                mp::ord::observe)) {
        if (peer_cb_)
            peer_cb_(node, static_cast<net::PeerState>(to));
    }
}

const ProxyStats&
Node::proxy_stats(int proxy) const
{
    MP_CHECK(proxy >= 0 && proxy < cfg_.num_proxies,
             "proxy index " << proxy << " out of range");
    return proxies_[static_cast<size_t>(proxy)]->stats;
}

bool
Node::valid_target(int dst_node) const
{
    if (dst_node == cfg_.id)
        return true;
    return dst_node >= 0 &&
           static_cast<size_t>(dst_node) < peer_proxies_.size() &&
           peer_proxies_[static_cast<size_t>(dst_node)] > 0;
}

int
Node::peer_proxy_count(int dst_node) const
{
    if (dst_node == cfg_.id)
        return cfg_.num_proxies;
    return peer_proxies_[static_cast<size_t>(dst_node)];
}

Node::TxPort
Node::out_port(const Proxy& self, int dst_node, int dst_proxy)
{
    if (dst_node < 0 ||
        static_cast<size_t>(dst_node) >= self.out_by_node.size())
        return TxPort{};
    auto& row = self.out_by_node[static_cast<size_t>(dst_node)];
    if (static_cast<size_t>(dst_proxy) >= row.size())
        return TxPort{};
    return row[static_cast<size_t>(dst_proxy)];
}

uint64_t
Node::now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Node::Link*
Node::link_for(Proxy& self, int dst_node, int dst_proxy)
{
    if (dst_node == cfg_.id)
        return nullptr; // loopback: unsequenced
    auto n = static_cast<size_t>(dst_node);
    if (n >= self.link_by_node.size())
        return nullptr;
    auto& row = self.link_by_node[n];
    if (static_cast<size_t>(dst_proxy) >= row.size())
        return nullptr;
    return row[static_cast<size_t>(dst_proxy)];
}

Node::PacketRef
Node::alloc_packet(Proxy& self)
{
    Packet* p = self.pool.try_get();
    if (p == nullptr) {
        // Pool dry: recycle whatever consumers have returned before
        // touching the heap.
        drain_returns(self);
        p = self.pool.try_get();
    }
    if (p != nullptr) {
        ++self.local.pool_hits;
        p->tx_state = 0;
        return PacketRef{p, false};
    }
    // Measured overload fallback: allocate rather than block, so an
    // undersized pool degrades to the old per-packet-new behaviour
    // instead of deadlocking. Default-init (no ()): the header is
    // fully written by every send site and receivers read only
    // `len` payload bytes, so no 1.1 KB zeroing here either.
    ++self.local.pool_misses;
    // Sanctioned: counted in pool_misses, balanced by a heap_free
    // at retirement.
    // NOLINTNEXTLINE(msgproxy-hot-path-alloc)
    p = new Packet;
    p->tx_state = kTxHeap;
    return PacketRef{p, true};
}

void
Node::release_packet(Proxy& self, PacketRef ref, RxPort from)
{
    if (from.ch == nullptr && from.io == nullptr) {
        // Our own packet (loopback consumption, transient recycle, or
        // ack-released window entry): retire it here, counted so the
        // leak invariant pool_hits == pool_returns (and pool_misses
        // == heap_frees) holds after quiescence.
        if (ref.heap) {
            // Retiring a provenance-checked heap-fallback packet.
            // NOLINTNEXTLINE(msgproxy-hot-path-alloc)
            delete ref.p;
            ++self.local.heap_frees;
        } else {
            self.pool.put(ref.p);
            ++self.local.pool_returns;
        }
        return;
    }
    if (ref.heap && !ref.retained) {
        // Peer's heap packet nobody retains: ours to delete. (The
        // cross-node sums still balance: its pool_miss was counted on
        // the sender, our heap_free here.)
        // NOLINTNEXTLINE(msgproxy-hot-path-alloc)
        delete ref.p;
        ++self.local.heap_frees;
        return;
    }
    if (from.ch != nullptr) {
        // Back to the producer through the return ring. This holds
        // the producer's whole pool plus its retained window, which
        // bounds everything routed here, so the push cannot fail.
        bool ok = from.ch->ret.try_push(ref.p);
        MP_CHECK(ok, "packet return ring overflow");
        return;
    }
    // Socket rx: the slot belongs to the link's slab, never to any
    // node's pool — hand it straight back.
    from.io->release_rx(ref);
}

void
Node::recycle_tx(Proxy& self, Packet* p)
{
    if ((p->tx_state & kTxRetained) != 0) {
        // Still awaiting ack: the consumer is done with the
        // memory, so the pointer may fly again (retransmit).
        p->tx_state &= static_cast<uint8_t>(~kTxInFlight);
    } else if ((p->tx_state & kTxHeap) != 0) {
        // NOLINTNEXTLINE(msgproxy-hot-path-alloc)
        delete p;
        ++self.local.heap_frees;
    } else {
        self.pool.put(p);
        ++self.local.pool_returns;
    }
}

void
Node::drain_returns(Proxy& self)
{
    for (const TxPort& t : self.tx) {
        Packet* p = nullptr;
        if (t.ch != nullptr) {
            while (t.ch->ret.try_pop(p))
                recycle_tx(self, p);
        } else if (t.io != nullptr) {
            Packet* buf[32];
            size_t n;
            while ((n = t.io->poll_recycled(buf, 32)) > 0) {
                for (size_t i = 0; i < n; ++i)
                    recycle_tx(self, buf[i]);
            }
        }
    }
}

bool
Node::drain_inputs(Proxy& self, bool defer_requests)
{
    bool progressed = false;
    const auto budget0 = static_cast<int>(cfg_.pkt_burst);
    const bool rel = cfg_.reliability.enabled;
    const bool fts = cfg_.fts.enabled;
    for (RxEntry& rxe : self.rx) {
        const RxPort& port = rxe.port;
        Link* lk = rxe.link;
        PacketRef r;
        int budget = budget0;
        while (budget-- > 0 && port_try_pop(port, r)) {
            progressed = true;
            Packet& pkt = *r.p;
            if (lk != nullptr) {
                // Inter-node packet: verify, apply the piggybacked
                // ack, then sequence-check. The ack is applied even
                // to packets the sequence check will discard — a
                // valid checksum vouches for the header, and acks on
                // duplicates are exactly how lost-ack recovery works.
                if (pkt.crc != packet_crc(pkt)) {
                    ++self.local.crc_fail;
                    ++self.local.pkts_dropped;
                    release_packet(self, r, port);
                    continue;
                }
                if (fts) {
                    // Any checksum-valid arrival proves the peer
                    // alive — data, acks, and heartbeats all count.
                    lk->fts.last_rx = self.now_cache;
                    if (lk->fts.suspected) {
                        lk->fts.suspected = false;
                        note_peer_suspect(lk->peer_node, false);
                    }
                }
                if (rel && pkt.ack != 0) {
                    lk->win.on_ack(
                        pkt.ack, self.now_cache, [&](PacketRef h) {
                            h.p->tx_state &=
                                static_cast<uint8_t>(~kTxRetained);
                            if ((h.p->tx_state & kTxInFlight) == 0)
                                release_packet(
                                    self,
                                    PacketRef{h.p, h.heap, false},
                                    nullptr);
                        });
                }
                if (pkt.kind == Packet::Kind::kAck ||
                    pkt.kind == Packet::Kind::kHeartbeat) {
                    // Both are unsequenced control traffic: the ack
                    // (and the liveness refresh above) is their whole
                    // payload; they never enter the sequence space.
                    release_packet(self, r, port);
                    continue;
                }
                if (rel) {
                    const auto v = lk->rseq.accept(pkt.seq);
                    if (v != net::ReceiverSeq::Verdict::kDeliver) {
                        if (v ==
                            net::ReceiverSeq::Verdict::kDuplicate)
                            ++self.local.pkts_duplicate;
                        ++self.local.pkts_dropped;
                        release_packet(self, r, port);
                        continue;
                    }
                }
            }
            if (defer_requests &&
                (pkt.kind == Packet::Kind::kGetReq ||
                 pkt.kind == Packet::Kind::kRqDeqReq)) {
                self.deferred.push_back(
                    Deferred{r.p, port, r.heap, r.retained});
            } else {
                handle_packet(self, pkt);
                release_packet(self, r, port);
            }
        }
    }
    return progressed;
}

bool
Node::push_port(Proxy& self, const TxPort& port, PacketRef ref)
{
    // This proxy is the port's only producer, so once full() clears
    // the push cannot fail (probing first also avoids consuming the
    // packet on a failed try_push, which takes its argument by
    // value). Keep draining our own input while the peer's port is
    // full so two saturated proxies cannot deadlock; requests that
    // would generate new sends are deferred to the main loop. The
    // wait is bounded by running_: at shutdown a dead consumer must
    // not spin us forever (the single-drop regression of ISSUE 4).
    if (ref.retained)
        ref.p->tx_state |= kTxInFlight;
    // Entering a potentially long wait: completions already earned
    // this iteration must not be held hostage to a full peer ring (a
    // user thread may be spin-waiting on one of these flags).
    if (self.comp_n != 0 && port_full(port))
        flush_completions(self);
    Backoff bo(cfg_.poll);
    uint64_t spins = 0;
    while (port_full(port)) {
        if (stall_debug() && (++spins & ((1u << 20) - 1)) == 0)
            std::fprintf(stderr,
                         "[node %d proxy %d] ring stall: kind=%d "
                         "retained=%d\n",
                         cfg_.id, self.index,
                         static_cast<int>(ref.p->kind),
                         static_cast<int>(ref.retained));
        if (!running_.load(mp::ord::observe)) {
            if (ref.retained) {
                // Custody reverts to the window; teardown frees it.
                ref.p->tx_state &= static_cast<uint8_t>(~kTxInFlight);
            } else {
                release_packet(self, ref, nullptr);
            }
            return false;
        }
        // A socket port only drains when its fd is serviced; pump it
        // here so a stalled writer cannot wedge (the transport-wide
        // pump runs in the main loop we are not in right now).
        if (port.ch == nullptr && port.io != nullptr)
            port.io->pump();
        if (drain_inputs(self, /*defer_requests=*/true))
            bo.reset();
        else
            bo.idle();
    }
    port_try_push(port, ref);
    ++self.local.packets_out;
    return true;
}

Node::PacketRef
Node::clone_packet(Proxy& self, const Packet& src)
{
    PacketRef c = alloc_packet(self);
    const uint8_t ts = c.p->tx_state; // custody is the clone's own
    std::memcpy(static_cast<void*>(c.p),
                static_cast<const void*>(&src),
                offsetof(Packet, payload));
    c.p->tx_state = ts;
    // Copy only the payload actually carried on the wire. Request
    // kinds (and acks) reuse `len` as a byte *count* — how much the
    // peer should send back — with an empty payload; taking it as a
    // payload size here would overrun the kMtu buffer and smear the
    // adjacent pool slot's header (which is exactly how the chaos
    // GET livelock of ISSUE 4 corrupted a neighbouring packet's
    // custody byte).
    const uint32_t n = src.kind == Packet::Kind::kGetReq ||
                               src.kind == Packet::Kind::kRqDeqReq ||
                               src.kind == Packet::Kind::kAck ||
                               src.kind == Packet::Kind::kHeartbeat
                           ? 0
                           : std::min(src.len, kMtu);
    if (n > 0)
        std::memcpy(c.p->payload, src.payload, n);
    return c;
}

bool
Node::inject_push(Proxy& self, Link& lk, PacketRef ref)
{
    if (lk.bh != nullptr && lk.bh->load(mp::ord::observe)) {
        // Partitioned (chaos hook): the wire eats everything. A
        // retained packet stays with its window, whose RTO will
        // escalate to link death; a transient one is simply gone.
        if (!ref.retained)
            release_packet(self, ref, nullptr);
        return true;
    }
    if (!lk.inj.enabled())
        return push_port(self, lk.out, ref);
    const net::FaultAction act = lk.inj.next();
    switch (act) {
      case net::FaultAction::kDrop:
        // Vanishes in transit. A retained packet stays in its window
        // (not in flight, so the RTO resends it); a transient one is
        // simply gone.
        if (!ref.retained)
            release_packet(self, ref, nullptr);
        return true;
      case net::FaultAction::kDuplicate: {
        PacketRef dup = clone_packet(self, *ref.p);
        if (!push_port(self, lk.out, ref)) {
            release_packet(self, dup, nullptr);
            return false;
        }
        return push_port(self, lk.out, dup);
      }
      case net::FaultAction::kReorder:
        // Held for 1..reorder_depth service ticks, then delivered by
        // service_link. In flight while stashed: the stash owns the
        // pointer, so retransmission must not enqueue a second copy.
        if (ref.retained)
            ref.p->tx_state |= kTxInFlight;
        lk.stash.push_back(
            Link::Stashed{ref, lk.inj.reorder_delay()});
        return true;
      case net::FaultAction::kCorrupt: {
        // The wire delivers a bit-flipped header: send a corrupted
        // clone and treat the original as lost (retained -> RTO
        // resend; transient -> gone), mirroring what a checksum-
        // verifying receiver turns corruption into.
        PacketRef bad = clone_packet(self, *ref.p);
        bad.p->off ^= uint64_t{1} << lk.inj.rand_below(64);
        if (!ref.retained)
            release_packet(self, ref, nullptr);
        return push_port(self, lk.out, bad);
      }
      case net::FaultAction::kDeliver:
        break;
    }
    return push_port(self, lk.out, ref);
}

bool
Node::send_packet(Proxy& self, int dst_node, int dst_proxy,
                  PacketRef ref)
{
    if (dst_node == cfg_.id && dst_proxy == self.index) {
        // Loopback to this very proxy: serve directly. Request kinds
        // that generate replies are deferred to the main loop so
        // handling never recurses.
        if (ref.p->kind == Packet::Kind::kGetReq ||
            ref.p->kind == Packet::Kind::kRqDeqReq) {
            self.deferred.push_back(
                Deferred{ref.p, RxPort{}, ref.heap});
        } else {
            handle_packet(self, *ref.p);
            release_packet(self, ref, nullptr);
        }
        return true;
    }
    const TxPort port = out_port(self, dst_node, dst_proxy);
    if (!port.valid()) {
        ++self.local.faults;
        release_packet(self, ref, nullptr);
        return false; // unconnected destination
    }
    Link* lk = link_for(self, dst_node, dst_proxy);
    if (lk == nullptr) {
        // Intra-node cross-proxy loopback: shared memory, no
        // reliability header (the receiver skips verification too).
        return push_port(self, port, ref);
    }
    if (lk->dead) {
        ++self.local.faults;
        release_packet(self, ref, nullptr);
        return false;
    }
    if (cfg_.reliability.enabled) {
        // Window flow control: block until the peer acks (keeping
        // our own inputs and the link's timers serviced, so the wait
        // either progresses, declares the peer dead, or aborts at
        // shutdown).
        Backoff bo(cfg_.poll);
        uint64_t spins = 0;
        if (self.comp_n != 0 && lk->win.full())
            flush_completions(self); // see push_port's stall flush
        while (lk->win.full() && !lk->dead) {
            ++spins;
            if (stall_debug() && (spins & ((1u << 20) - 1)) == 0)
                std::fprintf(
                    stderr,
                    "[node %d proxy %d] window stall: peer=%d/%d "
                    "win=%zu retries=%u rto=%llu out_full=%d\n",
                    cfg_.id, self.index, lk->peer_node,
                    lk->peer_proxy, lk->win.size(),
                    lk->win.retries(),
                    static_cast<unsigned long long>(lk->win.rto()),
                    static_cast<int>(port_full(lk->out)));
            if (!running_.load(mp::ord::observe)) {
                release_packet(self, ref, nullptr);
                return false;
            }
            // Another proxy (or a user thread) may declare this peer
            // dead while we stall here; fold that verdict into our
            // own link so the wait terminates.
            if (peer_unreachable(lk->peer_node))
                kill_link(self, *lk);
            // Socket links make ack progress only when their fd is
            // serviced; pump while the window is closed (ring-backed
            // links skip the virtual call).
            if (lk->out.ch == nullptr && lk->out.io != nullptr)
                lk->out.io->pump();
            // Refresh the RTO clock every 16th fast spin, or every
            // iteration once yielding (a clock read is noise next to
            // the yield syscall): at most ~16 sub-microsecond
            // iterations of staleness against 100 us+ timeouts,
            // instead of a clock read per spin.
            if ((spins & 15) == 1 || bo.yielding())
                self.now_cache = now_ns();
            service_link(self, *lk);
            if (drain_inputs(self, /*defer_requests=*/true))
                bo.reset();
            else
                bo.idle();
        }
        if (lk->dead) {
            ++self.local.faults;
            release_packet(self, ref, nullptr);
            return false;
        }
        ref.retained = true;
        ref.p->tx_state |= kTxRetained;
        ref.p->seq = lk->win.send(ref, self.now_cache);
        ref.p->ack = lk->rseq.cum_ack();
        lk->rseq.ack_sent(); // piggybacked
    } else {
        ref.p->seq = 0;
        ref.p->ack = 0;
    }
    ref.p->crc = packet_crc(*ref.p);
    return inject_push(self, *lk, ref);
}

void
Node::service_link(Proxy& self, Link& lk)
{
    // A broken stream (socket EOF/reset) is a dead peer right now:
    // unlike loss, a stream transport never recovers the connection,
    // so skip the RTO-exhaustion wait. Gated on ch == nullptr so
    // ring-backed (in-process) links never pay the virtual call.
    if (lk.out.ch == nullptr && lk.out.io != nullptr && !lk.dead &&
        lk.out.io->peer_closed())
        kill_link(self, lk);
    // Heartbeat failure detection (the third death path, after RTO
    // exhaustion and stream EOF): a link silent past
    // interval * suspect_after is suspected, past interval *
    // dead_after the peer is declared dead node-wide.
    // Port-less links (a forgotten peer awaiting re-wiring) carry no
    // liveness clock: assessing them would re-kill the peer's next
    // incarnation off stale silence.
    if (cfg_.fts.enabled && !lk.dead && lk.out.valid()) {
        switch (lk.fts.assess(self.now_cache, cfg_.fts)) {
          case net::PeerState::kDead:
            kill_link(self, lk);
            break;
          case net::PeerState::kSuspect:
            if (!lk.fts.suspected) {
                lk.fts.suspected = true;
                note_peer_suspect(lk.peer_node, true);
            }
            break;
          case net::PeerState::kAlive:
            break;
        }
    }
    // Age the reorder stash one tick (independent of reliability:
    // fault injection also applies to the raw protocol). Due packets
    // are released with try_push only — a full port just postpones
    // them a tick, which avoids recursive stall loops here.
    for (size_t i = 0; i < lk.stash.size();) {
        Link::Stashed& s = lk.stash[i];
        if (--s.delay == 0) {
            if (port_try_push(lk.out, s.ref)) {
                ++self.local.packets_out;
                lk.stash[i] = lk.stash.back();
                lk.stash.pop_back();
                continue;
            }
            s.delay = 1;
        }
        ++i;
    }
    if (!cfg_.reliability.enabled || lk.dead || lk.win.empty())
        return;
    const uint64_t now = self.now_cache;
    if (!lk.win.timeout_due(now))
        return;
    // The consumer may have handed back window packets it gap-dropped
    // (pointer returned, kTxInFlight still set). Those must become
    // resendable before the walk below, or go-back-N skips them on
    // every timeout — and a sender stalled on a full window never
    // reaches the idle-path drain, wedging the link for good.
    drain_returns(self);
    if (stall_debug() && lk.win.retries() >= 16 &&
        (lk.win.retries() & 15) == 0)
        std::fprintf(stderr,
                     "[node %d proxy %d] rto spin: peer=%d/%d "
                     "win=%zu oldest=%llu highest=%llu retries=%u\n",
                     cfg_.id, self.index, lk.peer_node, lk.peer_proxy,
                     lk.win.size(),
                     static_cast<unsigned long long>(
                         lk.win.oldest_unacked()),
                     static_cast<unsigned long long>(
                         lk.win.highest_sent()),
                     lk.win.retries());
    if (lk.win.exhausted()) {
        // max_retries timeouts with zero ack progress: declare the
        // peer dead node-wide, refuse new submits toward it, release
        // the window (graceful degradation instead of an eternal
        // retransmit spin).
        kill_link(self, lk);
        return;
    }
    // Go-back-N: resend every window entry whose pointer is not
    // already in flight (in a ring or the stash), oldest first, with
    // a freshened piggyback ack. Retransmissions face the injector
    // like any other traffic; a full ring leaves the entry for the
    // next timeout.
    lk.win.on_timeout(now, [&](uint64_t, PacketRef& h) {
        if ((h.p->tx_state & kTxInFlight) != 0)
            return;
        // Partitioned: skip the resend but let the retry counter
        // escalate, so a sticky partition becomes link death.
        if (lk.bh != nullptr && lk.bh->load(mp::ord::observe))
            return;
        if (port_full(lk.out))
            return;
        h.p->ack = lk.rseq.cum_ack();
        h.p->crc = packet_crc(*h.p);
        ++self.local.pkts_retransmitted;
        PacketRef again{h.p, h.heap, true};
        if (!lk.inj.enabled()) {
            h.p->tx_state |= kTxInFlight;
            port_try_push(lk.out, again);
            ++self.local.packets_out;
            return;
        }
        switch (lk.inj.next()) {
          case net::FaultAction::kDrop:
          case net::FaultAction::kCorrupt:
            // Lost again (a corrupted retransmit is dropped by the
            // receiver's checksum anyway); the next RTO retries.
            return;
          case net::FaultAction::kReorder:
            h.p->tx_state |= kTxInFlight;
            lk.stash.push_back(
                Link::Stashed{again, lk.inj.reorder_delay()});
            return;
          case net::FaultAction::kDuplicate:
          case net::FaultAction::kDeliver:
            h.p->tx_state |= kTxInFlight;
            port_try_push(lk.out, again);
            ++self.local.packets_out;
            return;
        }
    });
}

void
Node::kill_link(Proxy& self, Link& lk)
{
    if (lk.dead)
        return;
    lk.dead = true;
    ++self.local.faults;
    // All three death paths (RTO exhaustion, stream EOF, heartbeat
    // timeout) funnel through the node-level verdict; other proxies
    // pick it up via the dead-generation sweep.
    declare_peer_dead(lk.peer_node);
    lk.win.abandon([&](PacketRef h) {
        h.p->tx_state &= static_cast<uint8_t>(~kTxRetained);
        if ((h.p->tx_state & kTxInFlight) == 0)
            release_packet(self, PacketRef{h.p, h.heap, false},
                           nullptr);
    });
    fail_ccbs(self, lk.peer_node);
}

void
Node::fail_ccbs(Proxy& self, int peer_node)
{
    // Request/reply commands already in flight toward the dead peer
    // will never see their reply: complete them now so user threads
    // spinning on lsync observe progress and can consult
    // peer_unreachable() for the verdict.
    for (size_t i = 0; i < self.ccbs.size(); ++i) {
        Ccb& c = self.ccbs[i];
        if (!c.live || c.dst_node != peer_node)
            continue;
        c.live = false;
        if (c.lsync != nullptr)
            c.lsync->fetch_add(1, mp::ord::publish);
        self.free_ccbs.push_back(i);
    }
}

void
Node::sweep_dead_links(Proxy& self)
{
    // A death declared elsewhere (another proxy's detector, a stream
    // EOF, a user thread) reached this proxy via the dead-generation
    // counter: apply the node-level verdict to the local links so
    // their windows release and their CCBs fail now, instead of each
    // waiting out a private RTO/heartbeat verdict of its own.
    for (Link& lk : self.links) {
        if (!lk.dead && peer_unreachable(lk.peer_node))
            kill_link(self, lk);
    }
}

void
Node::service_links(Proxy& self)
{
    for (Link& lk : self.links)
        service_link(self, lk);
}

void
Node::flush_acks(Proxy& self, bool idle)
{
    if (!cfg_.reliability.enabled)
        return;
    const bool fts = cfg_.fts.enabled;
    for (Link& lk : self.links) {
        // A port-less link is a forgotten peer awaiting re-wiring:
        // nothing to ack, nowhere to send.
        if (lk.dead || !lk.out.valid())
            continue;
        bool hb = false;
        if (!lk.rseq.ack_due(cfg_.reliability.ack_every) &&
            !(idle && lk.rseq.ack_pending())) {
            if (!fts)
                continue;
            // No ack owed: the heartbeat path. Data progress counts
            // as liveness — when the window advanced since we last
            // looked, refresh the tx clock instead of emitting.
            const uint64_t hs = lk.win.highest_sent();
            if (hs != lk.fts.tx_mark) {
                lk.fts.tx_mark = hs;
                lk.fts.last_tx = self.now_cache;
                continue;
            }
            if (!lk.fts.heartbeat_due(self.now_cache, cfg_.fts))
                continue;
            hb = true;
        }
        // Standalone cumulative ack / liveness probe: unsequenced
        // (seq 0), loss-tolerant — a lost one is recovered by the
        // next, and both carry the current cumulative ack.
        PacketRef ref = alloc_packet(self);
        Packet* pkt = ref.p;
        pkt->kind = hb ? Packet::Kind::kHeartbeat
                       : Packet::Kind::kAck;
        pkt->flags = 0;
        pkt->src_node = cfg_.id;
        pkt->src_user = -1;
        pkt->seg = 0;
        pkt->len = 0;
        pkt->off = 0;
        pkt->ccb = 0;
        pkt->seq = 0;
        pkt->ack = lk.rseq.cum_ack();
        pkt->tid = 0; // control traffic belongs to no traced command
        pkt->crc = packet_crc(*pkt);
        lk.rseq.ack_sent();
        if (hb) {
            lk.fts.last_tx = self.now_cache;
            ++self.local.heartbeats_sent;
        } else {
            ++self.local.acks_sent;
        }
        inject_push(self, lk, ref);
    }
}

void
Node::handle_command(Proxy& self, Endpoint& ep, Command& cmd)
{
    self.owner.assert_owner("Node command handling (proxy thread only)");
    ++self.local.commands;
    // Load accounting for the rebalancer / doorbell forward rule
    // (single-writer while we own the shard; load+store, not RMW).
    ep.drained_.store(ep.drained_.load(mp::ord::counter) + 1,
                      mp::ord::counter);
    // Failover re-homing: a command aimed at a dead peer whose
    // failover target resolved is rewritten here, at the single
    // dispatch point, so routing below (including the remote-queue
    // shard rule) uniformly sees the survivor. Commands already in
    // flight past this point fail through the dead-link path.
    if (cmd.dst_node != cfg_.id && peer_unreachable(cmd.dst_node)) {
        const int fo = failover_target(cmd.dst_node);
        if (fo >= 0) {
            cmd.dst_node = fo;
            ++self.local.failovers;
        }
    }
    const int dst_p = peer_proxy_count(cmd.dst_node);
    const bool traced = cmd.tid != 0 && obs_on();
    const obs::OpKind opk = op_kind(cmd.op);
    if (traced) {
        // The user-thread timestamps ride in the command; pickup is
        // now. Real clock reads are fine on traced commands — the
        // tracing-disabled path never gets here.
        trace_stage(self, cmd.t_submit, cmd.tid, obs::Stage::kSubmit,
                    opk, cmd.len);
        trace_stage(self, cmd.t_enqueue, cmd.tid,
                    obs::Stage::kDoorbell, opk, 0);
        trace_stage(self, now_ns(), cmd.tid,
                    obs::Stage::kProxyPickup, opk, 0);
    }
    // Pooled packets are recycled without clearing, so every send
    // site below writes the complete header.
    switch (cmd.op) {
      case Command::Op::kPut: {
        // Route by target segment so all fragments of one PUT ride
        // one FIFO ring (rsync cannot pass its payload). Fragments
        // are cut straight out of the user's source buffer into
        // pooled slots and pushed one by one, so the receiver
        // pipelines with the sender instead of waiting for the whole
        // message to be built.
        const int dstprox = cmd.dst_seg % dst_p;
        const auto* src = static_cast<const uint8_t*>(cmd.src);
        uint32_t sent = 0;
        uint32_t nfrags = 0;
        while (sent < cmd.len || cmd.len == 0) {
            uint32_t frag = std::min(cmd.len - sent, kMtu);
            PacketRef ref = alloc_packet(self);
            Packet* pkt = ref.p;
            pkt->kind = Packet::Kind::kPutData;
            pkt->src_node = cfg_.id;
            pkt->src_user = ep.id();
            pkt->seg = cmd.dst_seg;
            pkt->off = cmd.dst_off + sent;
            pkt->len = frag;
            // Only the final fragment carries the rsync cookie: one
            // completion action per command, not per fragment.
            bool last = (sent + frag >= cmd.len);
            pkt->flags = last ? 1 : 0;
            pkt->ccb = last ? reinterpret_cast<uint64_t>(cmd.rsync) : 0;
            pkt->tid = cmd.tid;
            if (frag > 0)
                std::memcpy(pkt->payload, src + sent, frag);
            send_packet(self, cmd.dst_node, dstprox, ref);
            ++nfrags;
            sent += frag;
            if (cmd.len == 0)
                break;
        }
        if (nfrags > 1)
            self.local.acks_coalesced += nfrags - 1;
        if (traced) {
            const uint64_t t_out = now_ns();
            trace_stage(self, t_out, cmd.tid, obs::Stage::kWireOut,
                        opk, nfrags);
            // One-way op: the histogram measures submit -> wire
            // handoff (lsync semantics); kComplete fires remotely.
            self.op_hist[static_cast<int>(opk)].add(t_out -
                                                    cmd.t_submit);
        }
        note_completion(self, cmd.lsync, 1);
        break;
      }
      case Command::Op::kGet: {
        size_t idx;
        if (!self.free_ccbs.empty()) {
            idx = self.free_ccbs.back();
            self.free_ccbs.pop_back();
        } else {
            idx = self.ccbs.size();
            self.ccbs.push_back(Ccb{});
        }
        self.ccbs[idx] = Ccb{cmd.dst,  cmd.len,      cmd.lsync,
                             cmd.tid,  cmd.t_submit, cmd.dst_node,
                             true};
        PacketRef ref = alloc_packet(self);
        Packet* pkt = ref.p;
        pkt->kind = Packet::Kind::kGetReq;
        pkt->flags = 0;
        pkt->src_node = cfg_.id;
        pkt->src_user = ep.id();
        pkt->seg = cmd.dst_seg;
        pkt->off = cmd.dst_off;
        pkt->len = cmd.len;
        // The cookie carries the issuing proxy in its high half so
        // the reply routes straight back to the CCB's owner.
        pkt->ccb = (static_cast<uint64_t>(self.index) << 32) | idx;
        pkt->tid = cmd.tid;
        if (!send_packet(self, cmd.dst_node, cmd.dst_seg % dst_p,
                         ref)) {
            // The request never left (dead link / shutdown): no
            // reply will ever retire this CCB, so fail it here —
            // unless the death path already did inside the send.
            Ccb& c = self.ccbs[idx];
            if (c.live) {
                c.live = false;
                if (c.lsync != nullptr)
                    c.lsync->fetch_add(1, mp::ord::publish);
                self.free_ccbs.push_back(idx);
            }
        }
        if (traced)
            trace_stage(self, now_ns(), cmd.tid,
                        obs::Stage::kWireOut, opk, cmd.len);
        break;
      }
      case Command::Op::kEnq: {
        PacketRef ref = alloc_packet(self);
        Packet* pkt = ref.p;
        pkt->kind = Packet::Kind::kEnqData;
        pkt->flags = 1;
        pkt->src_node = cfg_.id;
        pkt->src_user = ep.id();
        // Endpoint ids scale past 64k: carry the destination in the
        // 64-bit offset field, not the uint16 segment id.
        pkt->seg = 0;
        pkt->off = static_cast<uint64_t>(cmd.dst_user);
        pkt->len = cmd.len;
        pkt->ccb = 0;
        pkt->tid = cmd.tid;
        if (cmd.len > 0)
            std::memcpy(pkt->payload, cmd.inline_data, cmd.len);
        // Route to the proxy that owns the receiving endpoint: it is
        // the single producer of that receive ring. Loopback reads
        // the live shard map (local endpoints migrate); remote nodes
        // keep the static rule and the receiver forwards if its map
        // disagrees (handle_packet's kEnqData).
        const int enq_prox =
            cmd.dst_node == cfg_.id
                ? endpoint_owner(cmd.dst_user)
                : cmd.dst_user % dst_p;
        send_packet(self, cmd.dst_node, enq_prox, ref);
        if (traced) {
            const uint64_t t_out = now_ns();
            trace_stage(self, t_out, cmd.tid, obs::Stage::kWireOut,
                        opk, cmd.len);
            self.op_hist[static_cast<int>(opk)].add(t_out -
                                                    cmd.t_submit);
        }
        note_completion(self, cmd.lsync, 1);
        break;
      }
      case Command::Op::kRqEnq: {
        PacketRef ref = alloc_packet(self);
        Packet* pkt = ref.p;
        pkt->kind = Packet::Kind::kRqEnqData;
        pkt->flags = 1;
        pkt->src_node = cfg_.id;
        pkt->src_user = ep.id();
        pkt->seg = static_cast<uint16_t>(cmd.dst_user); // queue id
        pkt->off = 0;
        pkt->len = cmd.len;
        pkt->ccb = 0;
        pkt->tid = cmd.tid;
        if (cmd.len > 0)
            std::memcpy(pkt->payload, cmd.inline_data, cmd.len);
        // Route to the queue's owning proxy (qid mod num_proxies):
        // it alone manipulates the queue, the paper's atomicity rule.
        send_packet(self, cmd.dst_node, cmd.dst_user % dst_p, ref);
        if (traced) {
            const uint64_t t_out = now_ns();
            trace_stage(self, t_out, cmd.tid, obs::Stage::kWireOut,
                        opk, cmd.len);
            self.op_hist[static_cast<int>(opk)].add(t_out -
                                                    cmd.t_submit);
        }
        note_completion(self, cmd.lsync, 1);
        break;
      }
      case Command::Op::kRqDeq: {
        size_t idx;
        if (!self.free_ccbs.empty()) {
            idx = self.free_ccbs.back();
            self.free_ccbs.pop_back();
        } else {
            idx = self.ccbs.size();
            self.ccbs.push_back(Ccb{});
        }
        self.ccbs[idx] = Ccb{cmd.dst,  cmd.len,      cmd.lsync,
                             cmd.tid,  cmd.t_submit, cmd.dst_node,
                             true};
        PacketRef ref = alloc_packet(self);
        Packet* pkt = ref.p;
        pkt->kind = Packet::Kind::kRqDeqReq;
        pkt->flags = 0;
        pkt->src_node = cfg_.id;
        pkt->src_user = ep.id();
        pkt->seg = static_cast<uint16_t>(cmd.dst_user);
        pkt->off = 0;
        pkt->len = cmd.len;
        pkt->ccb = (static_cast<uint64_t>(self.index) << 32) | idx;
        pkt->tid = cmd.tid;
        if (!send_packet(self, cmd.dst_node, cmd.dst_user % dst_p,
                         ref)) {
            Ccb& c = self.ccbs[idx];
            if (c.live) {
                c.live = false;
                if (c.lsync != nullptr)
                    c.lsync->fetch_add(1, mp::ord::publish);
                self.free_ccbs.push_back(idx);
            }
        }
        if (traced)
            trace_stage(self, now_ns(), cmd.tid,
                        obs::Stage::kWireOut, opk, cmd.len);
        break;
      }
      case Command::Op::kNop:
        break;
    }
}

void
Node::handle_packet(Proxy& self, Packet& pkt)
{
    self.owner.assert_owner(
        "Node segments/rqueues/ccbs (proxy thread only)");
    ++self.local.packets_in;
    switch (pkt.kind) {
      case Packet::Kind::kPutData: {
        if (pkt.seg >= segments_.size()) {
            ++self.local.faults;
            return;
        }
        const Segment& seg = segments_[pkt.seg];
        if (!seg.remote_access || pkt.off + pkt.len > seg.len) {
            ++self.local.faults;
            return;
        }
        // Receive-side zero-copy: straight from the ring-resident
        // packet into the validated target segment.
        if (pkt.len > 0)
            std::memcpy(seg.base + pkt.off, pkt.payload, pkt.len);
        if ((pkt.flags & 1) != 0 && pkt.ccb != 0) {
            // rsync flag lives in this node's address space.
            note_completion(self, reinterpret_cast<Flag*>(pkt.ccb),
                            1);
        }
        if ((pkt.flags & 1) != 0 && pkt.tid != 0 && obs_on())
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kComplete, obs::OpKind::kPut,
                        pkt.len);
        break;
      }
      case Packet::Kind::kGetReq: {
        const int req_proxy = static_cast<int>(pkt.ccb >> 32);
        if (pkt.tid != 0 && obs_on())
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kRemoteHandler, obs::OpKind::kGet,
                        pkt.len);
        bool ok = pkt.seg < segments_.size();
        const Segment* seg = ok ? &segments_[pkt.seg] : nullptr;
        ok = ok && seg->remote_access && pkt.off + pkt.len <= seg->len;
        if (!ok) {
            ++self.local.faults;
            // Fault reply: zero-length final fragment so the
            // requester's lsync still fires.
            PacketRef ref = alloc_packet(self);
            Packet* rep = ref.p;
            rep->kind = Packet::Kind::kGetData;
            rep->flags = 1;
            rep->src_node = cfg_.id;
            rep->src_user = pkt.src_user;
            rep->seg = pkt.seg;
            rep->len = 0;
            rep->off = 0;
            rep->ccb = pkt.ccb;
            rep->tid = pkt.tid;
            send_packet(self, pkt.src_node, req_proxy, ref);
            return;
        }
        // Reply fragments cut straight out of the segment into
        // pooled slots; only the final one flips the completion bit
        // (the requester's lsync fires once per GET).
        const uint64_t req_ccb = pkt.ccb;
        const int req_node = pkt.src_node;
        uint32_t sent = 0;
        uint32_t nfrags = 0;
        while (sent < pkt.len || pkt.len == 0) {
            uint32_t frag = std::min(pkt.len - sent, kMtu);
            PacketRef ref = alloc_packet(self);
            Packet* rep = ref.p;
            rep->kind = Packet::Kind::kGetData;
            rep->flags = (sent + frag >= pkt.len) ? 1 : 0;
            rep->src_node = cfg_.id;
            rep->src_user = pkt.src_user;
            rep->seg = pkt.seg;
            rep->len = frag;
            rep->off = sent;
            rep->ccb = req_ccb;
            rep->tid = pkt.tid;
            if (frag > 0)
                std::memcpy(rep->payload, seg->base + pkt.off + sent,
                            frag);
            send_packet(self, req_node, req_proxy, ref);
            ++nfrags;
            sent += frag;
            if (pkt.len == 0)
                break;
        }
        if (nfrags > 1)
            self.local.acks_coalesced += nfrags - 1;
        break;
      }
      case Packet::Kind::kGetData: {
        MP_CHECK(static_cast<int>(pkt.ccb >> 32) == self.index,
                 "GET reply routed to the wrong proxy");
        const auto slot = static_cast<size_t>(pkt.ccb & 0xffffffffu);
        MP_CHECK(slot < self.ccbs.size(), "bad CCB in GET reply");
        const bool traced = pkt.tid != 0 && obs_on();
        if (traced)
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kReplyIn, obs::OpKind::kGet,
                        pkt.len);
        Ccb& ccb = self.ccbs[slot];
        if (!ccb.live) {
            // Raced with link death: fail_ccbs already completed the
            // command and freed the slot; `dst` may be dangling.
            ++self.local.pkts_dropped;
            break;
        }
        if (pkt.len > 0) {
            std::memcpy(static_cast<uint8_t*>(ccb.dst) + pkt.off,
                        pkt.payload, pkt.len);
        }
        ccb.remaining -= std::min(ccb.remaining, pkt.len);
        if ((pkt.flags & 1) != 0) {
            note_completion(self, ccb.lsync, 1);
            if (traced) {
                const uint64_t t_done = now_ns();
                trace_stage(self, t_done, pkt.tid,
                            obs::Stage::kComplete, obs::OpKind::kGet,
                            pkt.len);
                // Request/reply op: full submit -> completion RTT.
                if (ccb.t_submit != 0)
                    self.op_hist[static_cast<int>(obs::OpKind::kGet)]
                        .add(t_done - ccb.t_submit);
            }
            ccb.live = false;
            self.free_ccbs.push_back(slot);
        }
        break;
      }
      case Packet::Kind::kEnqData: {
        // The endpoint id rides in the 64-bit offset field (uint16
        // seg truncates past 64k endpoints).
        auto user = static_cast<size_t>(pkt.off);
        if (user >= cfg_.max_endpoints) {
            ++self.local.faults;
            return;
        }
        Endpoint* dst_ep = endpoint_at(user);
        if (dst_ep == nullptr) {
            // Never created, or retired with traffic in flight: the
            // datagram has nowhere to land.
            ++self.local.enq_drops;
            return;
        }
        // A migrated endpoint can leave remote senders (static rule)
        // or in-flight loopback packets aimed at a stale owner:
        // re-aim at the live owner instead of touching a receive
        // ring we no longer produce into.
        const int ep_owner = endpoint_owner(static_cast<int>(user));
        if (ep_owner != self.index) {
            PacketRef fwd = clone_packet(self, pkt);
            send_packet(self, cfg_.id, ep_owner, fwd);
            ++self.local.pkts_forwarded;
            break;
        }
        if (!dst_ep->recvq_.try_push(pkt.payload, pkt.len))
            ++self.local.enq_drops;
        if (pkt.tid != 0 && obs_on())
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kComplete, obs::OpKind::kEnq,
                        pkt.len);
        break;
      }
      case Packet::Kind::kRqEnqData: {
        auto qid = static_cast<size_t>(pkt.seg);
        if (qid >= rqueues_.size()) {
            ++self.local.faults;
            return;
        }
        MP_CHECK(static_cast<int>(qid) % cfg_.num_proxies == self.index,
                 "RQ ENQ routed to a proxy that does not own queue "
                     << qid);
        rqueues_[qid].emplace_back(pkt.payload, pkt.payload + pkt.len);
        if (pkt.tid != 0 && obs_on())
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kComplete, obs::OpKind::kRqEnq,
                        pkt.len);
        break;
      }
      case Packet::Kind::kRqDeqReq: {
        const int req_proxy = static_cast<int>(pkt.ccb >> 32);
        if (pkt.tid != 0 && obs_on())
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kRemoteHandler,
                        obs::OpKind::kRqDeq, pkt.len);
        PacketRef ref = alloc_packet(self);
        Packet* rep = ref.p;
        rep->kind = Packet::Kind::kRqDeqData;
        rep->src_node = cfg_.id;
        rep->src_user = pkt.src_user;
        rep->seg = pkt.seg;
        rep->ccb = pkt.ccb;
        rep->off = 0;
        rep->tid = pkt.tid;
        auto qid = static_cast<size_t>(pkt.seg);
        if (qid >= rqueues_.size()) {
            ++self.local.faults;
            rep->len = 0;
            rep->flags = 1 | 2; // final + empty
        } else if (rqueues_[qid].empty()) {
            rep->len = 0;
            rep->flags = 1 | 2;
        } else {
            MP_CHECK(static_cast<int>(qid) % cfg_.num_proxies ==
                         self.index,
                     "RQ DEQ routed to a proxy that does not own queue "
                         << qid);
            auto& msg = rqueues_[qid].front();
            uint32_t n = std::min<uint32_t>(
                {static_cast<uint32_t>(msg.size()), pkt.len, kMtu});
            rep->len = n;
            rep->flags = 1;
            if (n > 0)
                std::memcpy(rep->payload, msg.data(), n);
            rqueues_[qid].pop_front();
        }
        send_packet(self, pkt.src_node, req_proxy, ref);
        break;
      }
      case Packet::Kind::kRqDeqData: {
        MP_CHECK(static_cast<int>(pkt.ccb >> 32) == self.index,
                 "DEQ reply routed to the wrong proxy");
        const auto slot = static_cast<size_t>(pkt.ccb & 0xffffffffu);
        MP_CHECK(slot < self.ccbs.size(), "bad CCB in DEQ reply");
        const bool traced = pkt.tid != 0 && obs_on();
        if (traced)
            trace_stage(self, now_ns(), pkt.tid,
                        obs::Stage::kReplyIn, obs::OpKind::kRqDeq,
                        pkt.len);
        Ccb& ccb = self.ccbs[slot];
        if (!ccb.live) {
            ++self.local.pkts_dropped;
            break;
        }
        if (pkt.len > 0)
            std::memcpy(ccb.dst, pkt.payload, pkt.len);
        note_completion(self, ccb.lsync, 1 + pkt.len);
        if (traced) {
            const uint64_t t_done = now_ns();
            trace_stage(self, t_done, pkt.tid, obs::Stage::kComplete,
                        obs::OpKind::kRqDeq, pkt.len);
            if (ccb.t_submit != 0)
                self.op_hist[static_cast<int>(obs::OpKind::kRqDeq)]
                    .add(t_done - ccb.t_submit);
        }
        ccb.live = false;
        self.free_ccbs.push_back(slot);
        break;
      }
      case Packet::Kind::kAck:
      case Packet::Kind::kHeartbeat:
        // Control traffic is intercepted in drain_inputs; nothing
        // to do if one ever reaches dispatch (loopback never emits
        // them).
        break;
    }
}

void
Node::publish_stats(Proxy& self)
{
    const LocalStats& l = self.local;
    ProxyStats& s = self.stats;
    s.commands.store(l.commands, mp::ord::counter);
    s.packets_in.store(l.packets_in, mp::ord::counter);
    s.packets_out.store(l.packets_out, mp::ord::counter);
    s.faults.store(l.faults, mp::ord::counter);
    s.enq_drops.store(l.enq_drops, mp::ord::counter);
    s.polls.store(l.polls, mp::ord::counter);
    s.idle_transitions.store(l.idle_transitions,
                             mp::ord::counter);
    s.pool_hits.store(l.pool_hits, mp::ord::counter);
    s.pool_misses.store(l.pool_misses, mp::ord::counter);
    s.acks_coalesced.store(l.acks_coalesced,
                           mp::ord::counter);
    s.batch_max.store(l.batch_max, mp::ord::counter);
    s.pkts_dropped.store(l.pkts_dropped, mp::ord::counter);
    s.pkts_retransmitted.store(l.pkts_retransmitted,
                               mp::ord::counter);
    s.pkts_duplicate.store(l.pkts_duplicate,
                           mp::ord::counter);
    s.acks_sent.store(l.acks_sent, mp::ord::counter);
    s.crc_fail.store(l.crc_fail, mp::ord::counter);
    s.pool_returns.store(l.pool_returns, mp::ord::counter);
    s.heap_frees.store(l.heap_frees, mp::ord::counter);
    s.busy_polls.store(l.busy_polls, mp::ord::counter);
    s.migrations.store(l.migrations, mp::ord::counter);
    s.pkts_forwarded.store(l.pkts_forwarded, mp::ord::counter);
    s.completions_batched.store(l.completions_batched,
                                mp::ord::counter);
    s.heartbeats_sent.store(l.heartbeats_sent, mp::ord::counter);
    s.failovers.store(l.failovers, mp::ord::counter);
    s.db_wakeups.store(l.db_wakeups, mp::ord::counter);
    s.db_false_wakeups.store(l.db_false_wakeups, mp::ord::counter);
    s.db_forwards.store(l.db_forwards, mp::ord::counter);
    s.db_carries.store(l.db_carries, mp::ord::counter);
    s.db_carry_empty.store(l.db_carry_empty, mp::ord::counter);
}

void
Node::visit_endpoint(Proxy& self, uint32_t e, bool from_carry,
                     uint32_t& spent, bool& progressed)
{
    Endpoint* epp = endpoint_at(e);
    if (epp == nullptr)
        return; // retired slot: its doorbell bits die here
    Endpoint& ep = *epp;
    const int own = endpoint_owner(static_cast<int>(e));
    if (own != self.index) {
        // A producer read a stale owner mid-migration (or the bit
        // predates the handoff): re-aim the live owner's doorbell,
        // but only when the endpoint actually has backlog, and count
        // only rings that propagated — the leaf dedup in ring()
        // absorbs repeats, so persistent backlog cannot become a
        // doorbell storm.
        if (ep.posted_.load(mp::ord::counter) !=
                ep.drained_.load(mp::ord::counter) &&
            ring_doorbell(own, static_cast<int>(e)))
            ++self.local.db_forwards;
        return;
    }
    // Owned visit: remember the exact id for the end-of-loop carry
    // rebuild (duplicates fine — the rebuild dedups by mark).
    self.wake_ids[self.wake_n++] = e;
    uint32_t budget = cfg_.cmd_burst;
    if (cfg_.loop_cmd_budget != 0) {
        // Per-loop fairness budget: once the iteration's command
        // quota is spent, later visits drain nothing and their
        // backlog rides the carry list to the next iteration.
        const uint32_t left = spent < cfg_.loop_cmd_budget
                                  ? cfg_.loop_cmd_budget - spent
                                  : 0;
        budget = std::min(budget, left);
    }
    uint32_t drained = 0;
    Command cmd;
    while (drained < budget && ep.cmdq_.try_pop(cmd)) {
        handle_command(self, ep, cmd);
        ++drained;
        progressed = true;
    }
    spent += drained;
    if (!from_carry)
        ++self.local.db_wakeups;
    if (drained == 0 && budget != 0) {
        // The queue was empty on arrival (budget != 0 rules out a
        // fairness-starved visit). From the doorbell that is the
        // benign post-consume race; from the carry list it would
        // mean an inexact revisit — the sweep bench gates it at 0.
        if (from_carry)
            ++self.local.db_carry_empty;
        else
            ++self.local.db_false_wakeups;
    }
}

void
Node::proxy_main(Proxy& self)
{
    self.owner.bind(); // sole owner of this proxy's shard of state
    setup_proxy_thread(self); // pin + NUMA first-touch
    const auto me = static_cast<size_t>(self.index);
    const auto cmd_burst = static_cast<int>(cfg_.cmd_burst);
    Backoff bo(cfg_.poll);
    bool was_idle = false;
    self.now_cache = now_ns();
    self.idle_polls = 0;
    // Figure 5 of the paper: scan this proxy's command queues and
    // its network inputs round-robin, forever — but in bursts: each
    // source is drained up to its budget before the loop moves on,
    // and per-event counters land in plain locals published once per
    // iteration.
    while (running_.load(mp::ord::observe)) {
        ++self.local.polls;
        const uint64_t before =
            self.local.commands + self.local.packets_in;
        bool progressed = false;
        // Endpoint-table epoch: every slot pointer this iteration
        // dereferences was published no later than this generation;
        // acknowledging it at the loop bottom tells the reclaimer we
        // hold no pointer retired before it.
        const uint64_t egen = ep_gen_.load(mp::ord::observe);

        // The RTO clock: one refresh site per loop — every 16th
        // iteration when busy (microsecond-scale staleness against
        // 100 us+ timeouts, instead of a ~25 ns clock read per
        // packet), every iteration when idle (the previous iteration
        // hit the backoff machine, so a yield/sleep of unknown
        // length may have passed and the ack-idle/RTO timers need a
        // truthful clock). The stall loops inside send_packet keep
        // their own refresh.
        if ((self.local.polls & 15) == 0 || self.idle_polls != 0)
            self.now_cache = now_ns();

        while (!self.deferred.empty()) {
            Deferred d = self.deferred.front();
            self.deferred.pop_front();
            handle_packet(self, *d.p);
            release_packet(self, PacketRef{d.p, d.heap, d.retained},
                           d.from);
            progressed = true;
        }

        // Endpoint handoffs ordered at this proxy (cold: one relaxed
        // load when the mailbox is empty).
        if (self.mig_pending.load(mp::ord::counter) != 0) {
            process_migrations(self);
            progressed = true;
        }

        if (cfg_.poll_mode == PollMode::kBitVector) {
            self.wake_n = 0;
            uint32_t spent = 0;
            // Exact-id carry revisits first: endpoints whose burst
            // budget ran out last iteration. Their commands are
            // already queued — no doorbell will announce them again
            // — and the ids are exact, so nothing aliased rides
            // along (db_carry_empty counts the proof).
            const uint32_t ncarry = self.carry_n;
            self.carry_n = 0;
            for (uint32_t i = 0; i < ncarry; ++i)
                visit_endpoint(self, self.carry[i],
                               /*from_carry=*/true, spent,
                               progressed);
            // The O(1) idle probe: one acquire load of the top
            // summary word. On a wakeup, consume() harvests exactly
            // the endpoints that posted, top-down. A producer that
            // enqueues after an exchange re-sets its bits (and the
            // chain above them), so nothing is lost.
            if (!self.bell.empty())
                self.bell.consume([&](size_t e) {
                    visit_endpoint(self, static_cast<uint32_t>(e),
                                   /*from_carry=*/false, spent,
                                   progressed);
                });
            // Rebuild the carry list from everything visited this
            // iteration: owned endpoints with verified leftover
            // backlog, deduplicated per loop (a carry revisit and a
            // doorbell harvest can both have visited the same id).
            for (uint32_t i = 0; i < self.wake_n; ++i) {
                const uint32_t e = self.wake_ids[i];
                if (self.carry_mark[e] == self.local.polls)
                    continue; // already carried this loop
                Endpoint* epp = endpoint_at(e);
                if (epp == nullptr ||
                    endpoint_owner(static_cast<int>(e)) !=
                        self.index)
                    continue; // retired or migrated mid-iteration
                if (epp->cmdq_.empty())
                    continue;
                self.carry_mark[e] = self.local.polls;
                self.carry[self.carry_n++] = e;
                ++self.local.db_carries;
            }
        } else {
            // Scan-all mode has no doorbells: walk every live slot
            // up to the registration high-water mark, honoring the
            // live shard map.
            const size_t ecount = ep_count_.load(mp::ord::observe);
            for (size_t e = 0; e < ecount; ++e) {
                Endpoint* epp = endpoint_at(e);
                if (epp == nullptr)
                    continue; // retired slot
                if (endpoint_owner(static_cast<int>(e)) !=
                    self.index)
                    continue;
                Endpoint& ep = *epp;
                Command cmd;
                int budget = cmd_burst;
                while (budget-- > 0 && ep.cmdq_.try_pop(cmd)) {
                    handle_command(self, ep, cmd);
                    progressed = true;
                }
            }
        }
        // Socket IO: flush pending writes and pull readable frames
        // into the links' rx queues before the drain below. A single
        // predictable branch for pure in-process wiring (io_pump_
        // stays null, so no virtual call).
        if (io_pump_ != nullptr)
            io_pump_->pump(self.index);

        // Peer deaths declared elsewhere (another proxy's detector,
        // a user thread): one relaxed load per loop; the sweep runs
        // only when the generation moved.
        {
            const uint64_t gen =
                peer_dead_gen_.load(mp::ord::observe);
            if (gen != self.dead_gen_seen) {
                self.dead_gen_seen = gen;
                sweep_dead_links(self);
            }
        }

        if (drain_inputs(self, /*defer_requests=*/false))
            progressed = true;

        // Reliability maintenance: reorder-stash aging, RTO
        // retransmits, peer-death detection, then any standalone
        // acks that came due (threshold or recovery). All no-ops on
        // a quiet link.
        service_links(self);
        flush_acks(self,
                   /*idle=*/self.idle_polls >=
                       cfg_.reliability.ack_idle_polls);

        // Apply the iteration's coalesced completion-flag increments
        // in one pass: cross-proxy completion traffic (acks, CCB
        // retirements, rsync bumps) costs one release RMW per
        // distinct flag per loop instead of one per event.
        if (self.comp_n != 0)
            flush_completions(self);

        // Slow-path work stealing: proxy 0 reads the per-endpoint
        // drain counters once per window and orders migrations off
        // the most loaded proxy.
        if (cfg_.rebalance.enabled && me == 0 &&
            cfg_.rebalance.window_polls != 0 &&
            (self.local.polls % cfg_.rebalance.window_polls) == 0)
            maybe_rebalance(self);

        const uint64_t batch =
            self.local.commands + self.local.packets_in - before;
        if (batch > self.local.batch_max)
            self.local.batch_max = batch;
        // Occupancy sample: how much backlog each productive wakeup
        // found (the queue-depth proxy of the snapshot API).
        if (batch > 0 && obs_on())
            self.batch_hist.add(batch);

        if (progressed)
            ++self.local.busy_polls;
        if (progressed || self.carry_n != 0) {
            bo.reset();
            was_idle = false;
            self.idle_polls = 0;
        } else if (!was_idle) {
            ++self.local.idle_transitions;
            was_idle = true;
        }
        publish_stats(self);
        // Acknowledge the endpoint-table epoch read at the loop top:
        // past this release store, the reclaimer knows this proxy
        // holds no slot pointer retired at or before `egen`.
        self.ep_gen_seen.store(egen, mp::ord::publish);
        if (!progressed && self.carry_n == 0) {
            ++self.idle_polls;
            // Idle housekeeping: recycle returned slots so the leak
            // invariant (pool_hits == pool_returns) converges after
            // traffic stops. The clock refresh happens at the top of
            // the next iteration (idle_polls != 0).
            drain_returns(self);
            bo.idle();
        }
    }
    publish_stats(self);
}

} // namespace proxy
