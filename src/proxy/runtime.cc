#include "proxy/runtime.h"

#include <algorithm>
#include <cstring>
#include <deque>

#include "util/log.h"

namespace proxy {

namespace {

/// CPU relax in spin loops; falls back to yield so the runtime stays
/// live-locked-free even on a single hardware thread.
inline void
relax(int& spins)
{
    ++spins;
    if (spins < 64) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
    } else {
        std::this_thread::yield();
        spins = 0;
    }
}

} // namespace

void
flag_wait_ge(const Flag& f, uint64_t v)
{
    int spins = 0;
    while (f.load(std::memory_order_acquire) < v)
        relax(spins);
}

// ---------------------------------------------------------------- Endpoint

int
Endpoint::node() const
{
    return node_.id();
}

uint16_t
Endpoint::register_segment(void* base, size_t len, bool remote_access)
{
    MP_CHECK(!node_.running_.load(std::memory_order_acquire),
             "segments must be registered before Node::start()");
    Node::Segment seg;
    seg.base = static_cast<uint8_t*>(base);
    seg.len = len;
    seg.remote_access = remote_access;
    seg.owner_endpoint = id_;
    node_.segments_.push_back(seg);
    return static_cast<uint16_t>(node_.segments_.size() - 1);
}

bool
Endpoint::put(const void* src, int dst_node, uint16_t dst_seg,
              uint64_t dst_off, uint32_t len, Flag* lsync, Flag* rsync)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    Command c;
    c.op = Command::Op::kPut;
    c.dst_node = dst_node;
    c.dst_seg = dst_seg;
    c.dst_off = dst_off;
    c.src = src;
    c.len = len;
    c.lsync = lsync;
    c.rsync = rsync;
    if (!cmdq_.try_push(c))
        return false;
    node_.note_command_posted(id_);
    return true;
}

bool
Endpoint::get(void* dst, int dst_node, uint16_t dst_seg, uint64_t dst_off,
              uint32_t len, Flag* lsync)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    Command c;
    c.op = Command::Op::kGet;
    c.dst_node = dst_node;
    c.dst_seg = dst_seg;
    c.dst_off = dst_off;
    c.dst = dst;
    c.len = len;
    c.lsync = lsync;
    if (!cmdq_.try_push(c))
        return false;
    node_.note_command_posted(id_);
    return true;
}

bool
Endpoint::enq(const void* data, uint32_t len, int dst_node, int dst_user,
              Flag* lsync)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    if (len > Command::kMaxEnqBytes)
        return false; // single-packet small messages only
    Command c;
    c.op = Command::Op::kEnq;
    c.dst_node = dst_node;
    c.dst_user = dst_user;
    c.len = len;
    c.lsync = lsync;
    if (len > 0)
        std::memcpy(c.inline_data, data, len);
    if (!cmdq_.try_push(std::move(c)))
        return false;
    node_.note_command_posted(id_);
    return true;
}

bool
Endpoint::try_recv(std::vector<uint8_t>& out)
{
    recv_owner_.assert_owner("Endpoint receive ring (single consumer)");
    return recvq_.try_pop(out);
}

bool
Endpoint::rq_enq(const void* data, uint32_t len, int dst_node, int qid,
                 Flag* lsync)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    if (len > Command::kMaxEnqBytes)
        return false;
    Command c;
    c.op = Command::Op::kRqEnq;
    c.dst_node = dst_node;
    c.dst_user = qid; // queue id rides in the dst_user field
    c.len = len;
    c.lsync = lsync;
    if (len > 0)
        std::memcpy(c.inline_data, data, len);
    if (!cmdq_.try_push(std::move(c)))
        return false;
    node_.note_command_posted(id_);
    return true;
}

bool
Endpoint::rq_deq(void* dst, uint32_t max, int dst_node, int qid,
                 Flag* lsync)
{
    cmd_owner_.assert_owner("Endpoint command queue (single producer)");
    Command c;
    c.op = Command::Op::kRqDeq;
    c.dst_node = dst_node;
    c.dst_user = qid;
    c.dst = dst;
    c.len = max;
    c.lsync = lsync;
    if (!cmdq_.try_push(c))
        return false;
    node_.note_command_posted(id_);
    return true;
}

// -------------------------------------------------------------------- Node

Node::Node(int id, PollMode poll_mode)
    : id_(id), poll_mode_(poll_mode)
{
}

Node::~Node()
{
    stop();
}

Endpoint&
Node::create_endpoint()
{
    MP_CHECK(!running_.load(std::memory_order_acquire),
             "endpoints must be created before Node::start()");
    endpoints_.push_back(
        std::unique_ptr<Endpoint>(new Endpoint(*this, static_cast<int>(
                                                          endpoints_.size()))));
    return *endpoints_.back();
}

int
Node::create_queue()
{
    MP_CHECK(!running_.load(std::memory_order_acquire),
             "queues must be created before Node::start()");
    rqueues_.emplace_back();
    return static_cast<int>(rqueues_.size()) - 1;
}

void
Node::connect(Node& a, Node& b)
{
    MP_CHECK(!a.running_.load() && !b.running_.load(),
             "connect before start");
    size_t need_a = static_cast<size_t>(b.id_) + 1;
    size_t need_b = static_cast<size_t>(a.id_) + 1;
    if (a.out_.size() < need_a)
        a.out_.resize(need_a);
    if (a.in_.size() < need_a)
        a.in_.resize(need_a);
    if (b.out_.size() < need_b)
        b.out_.resize(need_b);
    if (b.in_.size() < need_b)
        b.in_.resize(need_b);
    auto ab = std::make_shared<Channel>();
    auto ba = std::make_shared<Channel>();
    a.out_[static_cast<size_t>(b.id_)] = ab;
    b.in_[static_cast<size_t>(a.id_)] = ab;
    b.out_[static_cast<size_t>(a.id_)] = ba;
    a.in_[static_cast<size_t>(b.id_)] = ba;
}

void
Node::start()
{
    MP_CHECK(!running_.load(), "node already started");
    running_.store(true, std::memory_order_release);
    proxy_ = std::thread([this] { proxy_main(); });
}

void
Node::stop()
{
    if (running_.exchange(false) && proxy_.joinable()) {
        proxy_.join();
        proxy_owner_.release(); // a restarted proxy thread re-binds
    }
}

Node::Channel*
Node::out_channel(int dst_node)
{
    if (dst_node < 0 || static_cast<size_t>(dst_node) >= out_.size())
        return nullptr;
    return out_[static_cast<size_t>(dst_node)].get();
}

bool
Node::send_packet(int dst_node, std::unique_ptr<Packet> pkt)
{
    if (dst_node == id_) {
        // Loopback: the proxy serves intra-node traffic directly.
        // Request kinds that generate replies are deferred to the
        // main loop so handling never recurses.
        if (pkt->kind == Packet::Kind::kGetReq ||
            pkt->kind == Packet::Kind::kRqDeqReq) {
            deferred_reqs_.push_back(std::move(pkt));
        } else {
            handle_packet(*pkt);
        }
        return true;
    }
    Channel* ch = out_channel(dst_node);
    if (ch == nullptr) {
        ++stats_.faults;
        return false; // unconnected destination
    }
    int spins = 0;
    while (!ch->ring.try_push(std::move(pkt))) {
        // Keep draining our own input while the peer's ring is full so
        // two saturated proxies cannot deadlock. Requests that would
        // generate new sends are deferred to the main loop.
        bool progressed = false;
        for (auto& in : in_) {
            if (!in)
                continue;
            std::unique_ptr<Packet> p;
            if (in->ring.try_pop(p)) {
                progressed = true;
                if (p->kind == Packet::Kind::kGetReq ||
                    p->kind == Packet::Kind::kRqDeqReq) {
                    deferred_reqs_.push_back(std::move(p));
                } else {
                    handle_packet(*p);
                }
            }
        }
        if (!progressed)
            relax(spins);
    }
    ++stats_.packets_out;
    return true;
}

void
Node::handle_command(Endpoint& ep, const Command& cmd)
{
    proxy_owner_.assert_owner("Node command handling (proxy thread only)");
    ++stats_.commands;
    switch (cmd.op) {
      case Command::Op::kPut: {
        const auto* src = static_cast<const uint8_t*>(cmd.src);
        uint32_t sent = 0;
        while (sent < cmd.len || cmd.len == 0) {
            uint32_t frag = std::min(cmd.len - sent, kMtu);
            auto pkt = std::make_unique<Packet>();
            pkt->kind = Packet::Kind::kPutData;
            pkt->src_node = id_;
            pkt->src_user = ep.id();
            pkt->seg = cmd.dst_seg;
            pkt->off = cmd.dst_off + sent;
            pkt->len = frag;
            bool last = (sent + frag >= cmd.len);
            pkt->flags = last ? 1 : 0;
            pkt->ccb = last ? reinterpret_cast<uint64_t>(cmd.rsync) : 0;
            if (frag > 0)
                std::memcpy(pkt->payload, src + sent, frag);
            send_packet(cmd.dst_node, std::move(pkt));
            sent += frag;
            if (cmd.len == 0)
                break;
        }
        if (cmd.lsync != nullptr)
            cmd.lsync->fetch_add(1, std::memory_order_release);
        break;
      }
      case Command::Op::kGet: {
        size_t idx;
        if (!free_ccbs_.empty()) {
            idx = free_ccbs_.back();
            free_ccbs_.pop_back();
        } else {
            idx = ccbs_.size();
            ccbs_.push_back(Ccb{});
        }
        ccbs_[idx] = Ccb{cmd.dst, cmd.len, cmd.lsync};
        auto pkt = std::make_unique<Packet>();
        pkt->kind = Packet::Kind::kGetReq;
        pkt->src_node = id_;
        pkt->src_user = ep.id();
        pkt->seg = cmd.dst_seg;
        pkt->off = cmd.dst_off;
        pkt->len = cmd.len;
        pkt->ccb = idx;
        send_packet(cmd.dst_node, std::move(pkt));
        break;
      }
      case Command::Op::kEnq: {
        auto pkt = std::make_unique<Packet>();
        pkt->kind = Packet::Kind::kEnqData;
        pkt->src_node = id_;
        pkt->src_user = ep.id();
        pkt->seg = static_cast<uint16_t>(cmd.dst_user);
        pkt->off = 0;
        pkt->len = cmd.len;
        pkt->flags = 1;
        if (cmd.len > 0)
            std::memcpy(pkt->payload, cmd.inline_data, cmd.len);
        send_packet(cmd.dst_node, std::move(pkt));
        if (cmd.lsync != nullptr)
            cmd.lsync->fetch_add(1, std::memory_order_release);
        break;
      }
      case Command::Op::kRqEnq: {
        auto pkt = std::make_unique<Packet>();
        pkt->kind = Packet::Kind::kRqEnqData;
        pkt->src_node = id_;
        pkt->src_user = ep.id();
        pkt->seg = static_cast<uint16_t>(cmd.dst_user); // queue id
        pkt->len = cmd.len;
        pkt->flags = 1;
        if (cmd.len > 0)
            std::memcpy(pkt->payload, cmd.inline_data, cmd.len);
        send_packet(cmd.dst_node, std::move(pkt));
        if (cmd.lsync != nullptr)
            cmd.lsync->fetch_add(1, std::memory_order_release);
        break;
      }
      case Command::Op::kRqDeq: {
        size_t idx;
        if (!free_ccbs_.empty()) {
            idx = free_ccbs_.back();
            free_ccbs_.pop_back();
        } else {
            idx = ccbs_.size();
            ccbs_.push_back(Ccb{});
        }
        ccbs_[idx] = Ccb{cmd.dst, cmd.len, cmd.lsync};
        auto pkt = std::make_unique<Packet>();
        pkt->kind = Packet::Kind::kRqDeqReq;
        pkt->src_node = id_;
        pkt->src_user = ep.id();
        pkt->seg = static_cast<uint16_t>(cmd.dst_user);
        pkt->len = cmd.len;
        pkt->ccb = idx;
        send_packet(cmd.dst_node, std::move(pkt));
        break;
      }
      case Command::Op::kNop:
        break;
    }
}

void
Node::handle_packet(Packet& pkt)
{
    proxy_owner_.assert_owner("Node segments/rqueues/ccbs (proxy thread only)");
    ++stats_.packets_in;
    switch (pkt.kind) {
      case Packet::Kind::kPutData: {
        if (pkt.seg >= segments_.size()) {
            ++stats_.faults;
            return;
        }
        const Segment& seg = segments_[pkt.seg];
        if (!seg.remote_access || pkt.off + pkt.len > seg.len) {
            ++stats_.faults;
            return;
        }
        if (pkt.len > 0)
            std::memcpy(seg.base + pkt.off, pkt.payload, pkt.len);
        if ((pkt.flags & 1) != 0 && pkt.ccb != 0) {
            // rsync flag lives in this node's address space.
            reinterpret_cast<Flag*>(pkt.ccb)->fetch_add(
                1, std::memory_order_release);
        }
        break;
      }
      case Packet::Kind::kGetReq: {
        bool ok = pkt.seg < segments_.size();
        const Segment* seg = ok ? &segments_[pkt.seg] : nullptr;
        ok = ok && seg->remote_access && pkt.off + pkt.len <= seg->len;
        if (!ok) {
            ++stats_.faults;
            // Fault reply: zero-length final fragment so the
            // requester's lsync still fires.
            auto rep = std::make_unique<Packet>();
            rep->kind = Packet::Kind::kGetData;
            rep->src_node = id_;
            rep->len = 0;
            rep->off = 0;
            rep->flags = 1;
            rep->ccb = pkt.ccb;
            send_packet(pkt.src_node, std::move(rep));
            return;
        }
        uint32_t sent = 0;
        while (sent < pkt.len || pkt.len == 0) {
            uint32_t frag = std::min(pkt.len - sent, kMtu);
            auto rep = std::make_unique<Packet>();
            rep->kind = Packet::Kind::kGetData;
            rep->src_node = id_;
            rep->len = frag;
            rep->off = sent;
            rep->flags = (sent + frag >= pkt.len) ? 1 : 0;
            rep->ccb = pkt.ccb;
            if (frag > 0)
                std::memcpy(rep->payload, seg->base + pkt.off + sent,
                            frag);
            send_packet(pkt.src_node, std::move(rep));
            sent += frag;
            if (pkt.len == 0)
                break;
        }
        break;
      }
      case Packet::Kind::kGetData: {
        MP_CHECK(pkt.ccb < ccbs_.size(), "bad CCB in GET reply");
        Ccb& ccb = ccbs_[pkt.ccb];
        if (pkt.len > 0) {
            std::memcpy(static_cast<uint8_t*>(ccb.dst) + pkt.off,
                        pkt.payload, pkt.len);
        }
        ccb.remaining -= std::min(ccb.remaining, pkt.len);
        if ((pkt.flags & 1) != 0) {
            if (ccb.lsync != nullptr) {
                ccb.lsync->fetch_add(1, std::memory_order_release);
            }
            free_ccbs_.push_back(static_cast<size_t>(pkt.ccb));
        }
        break;
      }
      case Packet::Kind::kEnqData: {
        auto user = static_cast<size_t>(pkt.seg);
        if (user >= endpoints_.size()) {
            ++stats_.faults;
            return;
        }
        if (!endpoints_[user]->recvq_.try_push(pkt.payload, pkt.len))
            ++stats_.enq_drops;
        break;
      }
      case Packet::Kind::kRqEnqData: {
        auto qid = static_cast<size_t>(pkt.seg);
        if (qid >= rqueues_.size()) {
            ++stats_.faults;
            return;
        }
        rqueues_[qid].emplace_back(pkt.payload, pkt.payload + pkt.len);
        break;
      }
      case Packet::Kind::kRqDeqReq: {
        auto rep = std::make_unique<Packet>();
        rep->kind = Packet::Kind::kRqDeqData;
        rep->src_node = id_;
        rep->ccb = pkt.ccb;
        rep->off = 0;
        auto qid = static_cast<size_t>(pkt.seg);
        if (qid >= rqueues_.size()) {
            ++stats_.faults;
            rep->len = 0;
            rep->flags = 1 | 2; // final + empty
        } else if (rqueues_[qid].empty()) {
            rep->len = 0;
            rep->flags = 1 | 2;
        } else {
            auto& msg = rqueues_[qid].front();
            uint32_t n = std::min<uint32_t>(
                {static_cast<uint32_t>(msg.size()), pkt.len, kMtu});
            rep->len = n;
            rep->flags = 1;
            if (n > 0)
                std::memcpy(rep->payload, msg.data(), n);
            rqueues_[qid].pop_front();
        }
        send_packet(pkt.src_node, std::move(rep));
        break;
      }
      case Packet::Kind::kRqDeqData: {
        MP_CHECK(pkt.ccb < ccbs_.size(), "bad CCB in DEQ reply");
        Ccb& ccb = ccbs_[pkt.ccb];
        if (pkt.len > 0)
            std::memcpy(ccb.dst, pkt.payload, pkt.len);
        if (ccb.lsync != nullptr) {
            ccb.lsync->fetch_add(1 + pkt.len,
                                 std::memory_order_release);
        }
        free_ccbs_.push_back(static_cast<size_t>(pkt.ccb));
        break;
      }
      case Packet::Kind::kAck:
        break;
    }
}

void
Node::proxy_main()
{
    proxy_owner_.bind(); // the loop below is the sole owner of proxy state
    // Figure 5 of the paper: scan registered command queues and the
    // network input round-robin, forever.
    while (running_.load(std::memory_order_acquire)) {
        ++stats_.polls;
        bool progressed = false;

        while (!deferred_reqs_.empty()) {
            auto p = std::move(deferred_reqs_.front());
            deferred_reqs_.pop_front();
            handle_packet(*p);
            progressed = true;
        }

        if (poll_mode_ == PollMode::kBitVector) {
            // One probe covers every command queue: consume the mask,
            // then drain exactly the flagged queues. A producer that
            // enqueues after the exchange re-sets its bit, so nothing
            // is lost.
            uint64_t mask =
                cmd_mask_.exchange(0, std::memory_order_acquire);
            while (mask != 0) {
                int i = __builtin_ctzll(mask);
                mask &= mask - 1;
                // Beyond 64 endpoints the bits alias (id mod 64):
                // drain every endpoint sharing this bit.
                for (size_t e = static_cast<size_t>(i);
                     e < endpoints_.size(); e += 64) {
                    Endpoint& ep = *endpoints_[e];
                    Command cmd;
                    while (ep.cmdq_.try_pop(cmd)) {
                        handle_command(ep, cmd);
                        progressed = true;
                    }
                }
            }
        } else {
            for (auto& ep : endpoints_) {
                Command cmd;
                int budget = 8; // bounded batch per queue per scan
                while (budget-- > 0 && ep->cmdq_.try_pop(cmd)) {
                    handle_command(*ep, cmd);
                    progressed = true;
                }
            }
        }
        for (auto& in : in_) {
            if (!in)
                continue;
            std::unique_ptr<Packet> p;
            int budget = 16;
            while (budget-- > 0 && in->ring.try_pop(p)) {
                handle_packet(*p);
                progressed = true;
            }
        }
        if (!progressed) {
            // Idle: stay polite on oversubscribed hosts.
            std::this_thread::yield();
        }
    }
}

} // namespace proxy
