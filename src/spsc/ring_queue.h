/// \file
/// Lock-free single-producer/single-consumer ring queues.
///
/// This is the data structure at the heart of the paper's message
/// proxy: "the command queues are single-producer, single-consumer
/// queues, [so] the queue synchronization can be enforced by a
/// full/empty flag in each queue entry" — no locks, no atomic RMW
/// operations, just acquire/release ordering on the per-slot flag.
///
/// One thread may push and one (other) thread may pop, concurrently.

#ifndef MSGPROXY_SPSC_RING_QUEUE_H
#define MSGPROXY_SPSC_RING_QUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace spsc {

/// Fixed-capacity lock-free SPSC queue of T.
///
/// Capacity must be a power of two. Each slot carries the paper's
/// full/empty flag: the producer only writes empty slots and the
/// consumer only reads full ones, so head and tail indices stay
/// thread-local (no shared counters at all).
template <typename T, size_t kCapacity>
class RingQueue
{
    static_assert((kCapacity & (kCapacity - 1)) == 0,
                  "capacity must be a power of two");
    static_assert(kCapacity >= 2, "capacity too small");

  public:
    RingQueue() = default;

    RingQueue(const RingQueue&) = delete;
    RingQueue& operator=(const RingQueue&) = delete;

    /// Producer: attempts to enqueue; returns false when full.
    bool
    try_push(T value)
    {
        Slot& s = slots_[tail_ & kMask];
        if (s.full.load(std::memory_order_acquire))
            return false; // consumer has not drained this slot yet
        s.value = std::move(value);
        s.full.store(true, std::memory_order_release);
        ++tail_;
        return true;
    }

    /// Consumer: attempts to dequeue; returns false when empty.
    bool
    try_pop(T& out)
    {
        Slot& s = slots_[head_ & kMask];
        if (!s.full.load(std::memory_order_acquire))
            return false;
        out = std::move(s.value);
        s.full.store(false, std::memory_order_release);
        ++head_;
        return true;
    }

    /// Consumer: true when the next slot holds no message. This is
    /// the proxy's cheap poll: a single acquire load that stays in
    /// cache while the queue is idle.
    bool
    empty() const
    {
        return !slots_[head_ & kMask].full.load(
            std::memory_order_acquire);
    }

    /// Capacity in elements.
    static constexpr size_t capacity() { return kCapacity; }

  private:
    static constexpr size_t kMask = kCapacity - 1;

    struct alignas(64) Slot
    {
        std::atomic<bool> full{false};
        T value{};
    };

    Slot slots_[kCapacity];
    /// Producer-local cursor (only the producer thread touches it).
    alignas(64) size_t tail_ = 0;
    /// Consumer-local cursor (only the consumer thread touches it).
    alignas(64) size_t head_ = 0;
};

/// Variable-length message ring: a byte ring carrying length-prefixed
/// records, with the same SPSC full/empty-flag discipline applied to
/// a record header slot. Used for the user-level receive queues where
/// message sizes vary.
template <size_t kBytes>
class MsgRing
{
    static_assert((kBytes & (kBytes - 1)) == 0,
                  "capacity must be a power of two");

  public:
    MsgRing() = default;

    MsgRing(const MsgRing&) = delete;
    MsgRing& operator=(const MsgRing&) = delete;

    /// Producer: appends an n-byte message; false when there is not
    /// enough contiguous credit.
    bool
    try_push(const void* data, uint32_t n)
    {
        uint32_t need = record_bytes(n);
        if (need > kBytes / 2)
            return false; // message larger than the ring supports
        uint64_t head = head_.load(std::memory_order_acquire);
        if (tail_ + need - head > kBytes)
            return false; // full
        // Write payload then publish the header (release).
        uint64_t pos = tail_ + kHeaderBytes;
        const auto* src = static_cast<const uint8_t*>(data);
        for (uint32_t i = 0; i < n; ++i)
            buf_[(pos + i) & kMask] = src[i];
        hdr_at(tail_).store(
            (static_cast<uint64_t>(1) << 63) | n,
            std::memory_order_release);
        tail_ += need;
        return true;
    }

    /// Consumer: pops the head message into out (resized); false when
    /// empty.
    template <typename Vec>
    bool
    try_pop(Vec& out)
    {
        uint64_t h = hdr_at(chead_).load(std::memory_order_acquire);
        if ((h >> 63) == 0)
            return false;
        auto n = static_cast<uint32_t>(h & 0xffffffffu);
        out.resize(n);
        uint64_t pos = chead_ + kHeaderBytes;
        for (uint32_t i = 0; i < n; ++i)
            out[i] = buf_[(pos + i) & kMask];
        hdr_at(chead_).store(0, std::memory_order_release);
        chead_ += record_bytes(n);
        head_.store(chead_, std::memory_order_release);
        return true;
    }

    /// Consumer: true when no message is queued.
    bool
    empty() const
    {
        return (hdr_at(chead_).load(std::memory_order_acquire) >> 63) ==
               0;
    }

  private:
    static constexpr size_t kMask = kBytes - 1;
    static constexpr uint32_t kHeaderBytes = 8;

    static uint32_t
    record_bytes(uint32_t n)
    {
        // Header + payload, rounded to the header alignment.
        return kHeaderBytes +
               ((n + kHeaderBytes - 1) / kHeaderBytes) * kHeaderBytes;
    }

    std::atomic<uint64_t>&
    hdr_at(uint64_t pos)
    {
        return *reinterpret_cast<std::atomic<uint64_t>*>(
            &buf_[pos & kMask]);
    }

    const std::atomic<uint64_t>&
    hdr_at(uint64_t pos) const
    {
        return *reinterpret_cast<const std::atomic<uint64_t>*>(
            &buf_[pos & kMask]);
    }

    alignas(64) uint8_t buf_[kBytes] = {};
    /// Producer-local write cursor.
    alignas(64) uint64_t tail_ = 0;
    /// Consumer-local read cursor, mirrored to head_ for the
    /// producer's space accounting.
    alignas(64) uint64_t chead_ = 0;
    std::atomic<uint64_t> head_{0};
};

} // namespace spsc

#endif // MSGPROXY_SPSC_RING_QUEUE_H
