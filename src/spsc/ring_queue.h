/// \file
/// Lock-free single-producer/single-consumer ring queues.
///
/// This is the data structure at the heart of the paper's message
/// proxy: "the command queues are single-producer, single-consumer
/// queues, [so] the queue synchronization can be enforced by a
/// full/empty flag in each queue entry" — no locks, no atomic RMW
/// operations, just acquire/release ordering on the per-slot flag.
///
/// One thread may push and one (other) thread may pop, concurrently.
///
/// Both queues are parameterized over an *atomics policy* so the
/// identical protocol code can run either on real `std::atomic`
/// (production; the default instantiation compiles to exactly the
/// code it did before the policy existed) or on `check::CheckedAtomics`
/// (src/check/), whose instrumented cells let the deterministic
/// interleaving checker explore every two-thread schedule and verify
/// the acquire/release protocol by happens-before race detection.
///
/// The memory orders of the protocol are likewise injected through an
/// `Orders` policy. Production code always uses `DefaultOrders`
/// (publish = release, observe = acquire); the weakened variants
/// exist solely so mutation tests can prove the checker detects a
/// broken protocol (see tests/check_test.cc).

#ifndef MSGPROXY_SPSC_RING_QUEUE_H
#define MSGPROXY_SPSC_RING_QUEUE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "check/ownership.h"
#include "util/annotations.h"

namespace spsc {

/// A non-atomic storage cell. The indirection exists so the checking
/// policy can observe plain (data) accesses for race detection; this
/// default is a zero-cost transparent wrapper.
template <typename T>
class PlainCell
{
  public:
    PlainCell() = default;

    /// Writes the cell (data access, no ordering of its own).
    void put(T v) { v_ = std::move(v); }

    /// Moves the value out of the cell.
    T take() { return std::move(v_); }

    /// Reads the cell by value (for trivially copyable payloads).
    T get() const { return v_; }

  private:
    T v_{};
};

/// Production atomics policy: real std::atomic, transparent data
/// cells. Instantiating the queues with this policy is bit-for-bit
/// the pre-policy code.
struct RealAtomics
{
    template <typename U>
    using atomic_type = std::atomic<U>;
    template <typename U>
    using plain_type = PlainCell<U>;
};

/// The shipped memory-ordering discipline of the SPSC protocol:
/// `publish` orders every flag/header store that transfers slot
/// ownership to the other thread; `observe` orders every load that
/// tests such a flag/header.
struct DefaultOrders
{
    static constexpr std::memory_order publish = std::memory_order_release;
    static constexpr std::memory_order observe = std::memory_order_acquire;
};

/// Mutation-testing order sets: deliberately broken protocols used to
/// demonstrate that the interleaving checker has teeth. Never use in
/// production code.
struct RelaxedPublishOrders
{
    static constexpr std::memory_order publish = std::memory_order_relaxed;
    static constexpr std::memory_order observe = std::memory_order_acquire;
};

struct RelaxedObserveOrders
{
    static constexpr std::memory_order publish = std::memory_order_release;
    static constexpr std::memory_order observe = std::memory_order_relaxed;
};

/// Fixed-capacity lock-free SPSC queue of T.
///
/// Capacity must be a power of two. Each slot carries the paper's
/// full/empty flag: the producer only writes empty slots and the
/// consumer only reads full ones, so head and tail indices stay
/// thread-local (no shared counters at all).
template <typename T, size_t kCapacity, typename Policy = RealAtomics,
          typename Orders = DefaultOrders>
class RingQueue
{
    static_assert((kCapacity & (kCapacity - 1)) == 0,
                  "capacity must be a power of two");
    static_assert(kCapacity >= 2, "capacity too small");

  public:
    RingQueue() = default;

    RingQueue(const RingQueue&) = delete;
    RingQueue& operator=(const RingQueue&) = delete;

    /// Producer: attempts to enqueue; returns false when full.
    MSGPROXY_HOT_PATH bool
    try_push(T value)
    {
        Slot& s = slots_[tail_ & kMask];
        if (s.full.load(Orders::observe))
            return false; // consumer has not drained this slot yet
        s.value.put(std::move(value));
        s.full.store(true, Orders::publish);
        ++tail_;
        return true;
    }

    /// Consumer: attempts to dequeue; returns false when empty.
    MSGPROXY_HOT_PATH bool
    try_pop(T& out)
    {
        Slot& s = slots_[head_ & kMask];
        if (!s.full.load(Orders::observe))
            return false;
        out = s.value.take();
        s.full.store(false, Orders::publish);
        ++head_;
        return true;
    }

    /// Consumer: true when the next slot holds no message. This is
    /// the proxy's cheap poll: a single acquire load that stays in
    /// cache while the queue is idle.
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        return !slots_[head_ & kMask].full.load(Orders::observe);
    }

    /// Producer: true when the next push would fail. Lets a producer
    /// of move-only values test for space before materializing the
    /// push (try_push consumes its argument even on failure).
    MSGPROXY_HOT_PATH bool
    full() const
    {
        return slots_[tail_ & kMask].full.load(Orders::observe);
    }

    /// Capacity in elements.
    static constexpr size_t capacity() { return kCapacity; }

  private:
    static constexpr size_t kMask = kCapacity - 1;

    struct alignas(64) Slot
    {
        typename Policy::template atomic_type<bool> full{false};
        typename Policy::template plain_type<T> value{};
    };

    Slot slots_[kCapacity];
    /// Producer-local cursor (only the producer thread touches it).
    alignas(64) size_t tail_ = 0;
    /// Consumer-local cursor (only the consumer thread touches it).
    alignas(64) size_t head_ = 0;
};

/// Variable-length message ring: a byte ring carrying length-prefixed
/// records, with the same SPSC full/empty-flag discipline applied to
/// a record header slot. Used for the user-level receive queues where
/// message sizes vary.
///
/// Record headers live in a dedicated `atomic<uint64_t>` array — one
/// entry per 8-byte-aligned record start — rather than being
/// reinterpret_cast overlays on the byte buffer (which was undefined
/// behaviour: unaligned-capable placement aside, accessing bytes
/// through an atomic they were never constructed as violates strict
/// aliasing). Record positions are always multiples of kHeaderBytes,
/// so headers of live records never collide. The wire format and
/// capacity accounting are unchanged: a record still charges
/// kHeaderBytes + padded payload against the byte capacity (the 8
/// bytes at the record start stay reserved even though the header no
/// longer lives there).
template <size_t kBytes, typename Policy = RealAtomics,
          typename Orders = DefaultOrders>
class MsgRing
{
    static_assert((kBytes & (kBytes - 1)) == 0,
                  "capacity must be a power of two");
    static_assert(kBytes >= 16, "capacity too small");

  public:
    MsgRing() = default;

    MsgRing(const MsgRing&) = delete;
    MsgRing& operator=(const MsgRing&) = delete;

    /// Producer: appends an n-byte message; false when there is not
    /// enough contiguous credit.
    MSGPROXY_HOT_PATH bool
    try_push(const void* data, uint32_t n)
    {
        uint32_t need = record_bytes(n);
        if (need > kBytes / 2)
            return false; // message larger than the ring supports
        uint64_t head = head_.load(Orders::observe);
        if (tail_ + need - head > kBytes)
            return false; // full
        // Write payload then publish the header (release).
        uint64_t pos = tail_ + kHeaderBytes;
        const auto* src = static_cast<const uint8_t*>(data);
        for (uint32_t i = 0; i < n; ++i)
            buf_[(pos + i) & kMask].put(src[i]);
        hdr_at(tail_).store(
            (static_cast<uint64_t>(1) << 63) | n, Orders::publish);
        tail_ += need;
        return true;
    }

    /// Consumer: pops the head message into out (resized); false when
    /// empty.
    template <typename Vec>
    MSGPROXY_HOT_PATH bool
    try_pop(Vec& out)
    {
        uint64_t h = hdr_at(chead_).load(Orders::observe);
        if ((h >> 63) == 0)
            return false;
        auto n = static_cast<uint32_t>(h & 0xffffffffu);
        out.resize(n);
        uint64_t pos = chead_ + kHeaderBytes;
        for (uint32_t i = 0; i < n; ++i)
            out[i] = buf_[(pos + i) & kMask].get();
        hdr_at(chead_).store(0, Orders::publish);
        chead_ += record_bytes(n);
        head_.store(chead_, Orders::publish);
        return true;
    }

    /// Consumer: true when no message is queued.
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        return (hdr_at(chead_).load(Orders::observe) >> 63) == 0;
    }

  private:
    static constexpr size_t kMask = kBytes - 1;
    static constexpr uint32_t kHeaderBytes = 8;
    static constexpr size_t kHdrSlots = kBytes / kHeaderBytes;

    static uint32_t
    record_bytes(uint32_t n)
    {
        // Header + payload, rounded to the header alignment.
        return kHeaderBytes +
               ((n + kHeaderBytes - 1) / kHeaderBytes) * kHeaderBytes;
    }

    typename Policy::template atomic_type<uint64_t>&
    hdr_at(uint64_t pos)
    {
        return hdr_[(pos & kMask) / kHeaderBytes];
    }

    const typename Policy::template atomic_type<uint64_t>&
    hdr_at(uint64_t pos) const
    {
        return hdr_[(pos & kMask) / kHeaderBytes];
    }

    alignas(64) typename Policy::template plain_type<uint8_t>
        buf_[kBytes] = {};
    /// Per-record full/empty headers, indexed by record start / 8.
    alignas(64) typename Policy::template atomic_type<uint64_t>
        hdr_[kHdrSlots] = {};
    /// Producer-local write cursor.
    alignas(64) uint64_t tail_ = 0;
    /// Consumer-local read cursor, mirrored to head_ for the
    /// producer's space accounting.
    alignas(64) uint64_t chead_ = 0;
    typename Policy::template atomic_type<uint64_t> head_{0};
};

/// Rounds v up to the next power of two (minimum `floor`). Used by
/// the runtime-capacity queues so user-supplied depths never violate
/// the power-of-two masking the protocol relies on.
constexpr size_t
ceil_pow2(size_t v, size_t floor)
{
    size_t p = floor;
    while (p < v)
        p <<= 1;
    return p;
}

/// Heap-backed SPSC queue with run-time capacity.
///
/// The slot protocol is line-for-line the one of RingQueue (per-slot
/// full/empty flag, publish = release, observe = acquire), which the
/// deterministic interleaving checker verifies exhaustively on the
/// template form — only the storage moved from an inline array to a
/// heap allocation sized at construction. Production-only: this
/// variant is not parameterized over the checking policies.
template <typename T>
class DynRingQueue
{
  public:
    /// Creates a queue of at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    explicit DynRingQueue(size_t capacity)
        : mask_(ceil_pow2(capacity, 2) - 1),
          slots_(new Slot[mask_ + 1])
    {
    }

    DynRingQueue(const DynRingQueue&) = delete;
    DynRingQueue& operator=(const DynRingQueue&) = delete;

    /// Producer: attempts to enqueue; returns false when full.
    MSGPROXY_HOT_PATH bool
    try_push(T value)
    {
        Slot& s = slots_[tail_ & mask_];
        if (s.full.load(std::memory_order_acquire))
            return false;
        s.value = std::move(value);
        s.full.store(true, std::memory_order_release);
        ++tail_;
        return true;
    }

    /// Consumer: attempts to dequeue; returns false when empty.
    MSGPROXY_HOT_PATH bool
    try_pop(T& out)
    {
        Slot& s = slots_[head_ & mask_];
        if (!s.full.load(std::memory_order_acquire))
            return false;
        out = std::move(s.value);
        s.full.store(false, std::memory_order_release);
        ++head_;
        return true;
    }

    /// Consumer: true when the next slot holds no message.
    ///
    /// Reads the consumer-private head_ cursor, so the answer is
    /// only meaningful on the consumer thread — a result another
    /// thread acts on is a race on the cursor, not just staleness.
    /// Ownership-checked builds enforce that: the first caller
    /// binds the consumer role exactly like try_pop's thread does,
    /// and release_consumer() hands it off.
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        consumer_owner_.assert_owner(
            "DynRingQueue consumer (empty() reads the private head "
            "cursor)");
        return !slots_[head_ & mask_].full.load(
            std::memory_order_acquire);
    }

    /// Ownership-lint escape hatch (MSGPROXY_CHECK_OWNERSHIP
    /// builds): unbinds the consumer role so the queue can be
    /// handed to another consumer thread (endpoint migration, proxy
    /// restart). Call only while no pop is in flight.
    void release_consumer() { consumer_owner_.release(); }

    /// Producer: true when the next push would fail.
    MSGPROXY_HOT_PATH bool
    full() const
    {
        return slots_[tail_ & mask_].full.load(
            std::memory_order_acquire);
    }

    /// Capacity in elements (after power-of-two rounding).
    size_t capacity() const { return mask_ + 1; }

  private:
    struct alignas(64) Slot
    {
        std::atomic<bool> full{false};
        T value{};
    };

    size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    /// Consumer-role lint (dormant atomic unless
    /// MSGPROXY_CHECK_OWNERSHIP; mutable: empty() is a const read
    /// on the legit thread).
    mutable check::ThreadOwner consumer_owner_;
    /// Producer-local cursor (only the producer thread touches it).
    alignas(64) size_t tail_ = 0;
    /// Consumer-local cursor (only the consumer thread touches it).
    alignas(64) size_t head_ = 0;
};

/// Packed SPSC ring of trivially copyable values (pointers, small
/// PODs) with run-time capacity — the slot-return ring of the
/// proxy's packet pool. Unlike RingQueue, slots carry no per-entry
/// full/empty flag and are not cache-line padded: synchronization
/// rides on a classic Lamport head/tail index pair instead, so a
/// 2048-entry ring of pointers is 16 KB of contiguous memory rather
/// than 128 KB of padded slots, and a bulk drain walks it linearly.
/// Each side caches the other's cursor and refreshes only when the
/// cached value says the ring might be full/empty, so in steady
/// state a push or pop touches one shared cache line, not two.
///
/// One thread may push and one (other) thread may pop, concurrently.
/// Production-only (not parameterized over the checking policies);
/// the protocol is the textbook bounded buffer: the producer
/// release-publishes tail after writing the slot, the consumer
/// acquire-reads tail before reading the slot, and symmetrically for
/// head on the reclaim side.
template <typename T>
class DynPtrRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "DynPtrRing carries raw pointers / small PODs");

  public:
    /// Creates a ring of at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    explicit DynPtrRing(size_t capacity)
        : mask_(ceil_pow2(capacity, 2) - 1), buf_(new T[mask_ + 1]())
    {
    }

    DynPtrRing(const DynPtrRing&) = delete;
    DynPtrRing& operator=(const DynPtrRing&) = delete;

    /// Producer: attempts to enqueue; returns false when full.
    MSGPROXY_HOT_PATH bool
    try_push(T v)
    {
        const uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_cache_ > mask_) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (t - head_cache_ > mask_)
                return false; // genuinely full
        }
        buf_[t & mask_] = v;
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /// Consumer: attempts to dequeue; returns false when empty.
    MSGPROXY_HOT_PATH bool
    try_pop(T& out)
    {
        const uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_cache_) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (h == tail_cache_)
                return false; // genuinely empty
        }
        out = buf_[h & mask_];
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /// True when no value is queued (either side may probe).
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    /// Capacity in elements (after power-of-two rounding).
    size_t capacity() const { return mask_ + 1; }

  private:
    size_t mask_;
    std::unique_ptr<T[]> buf_;
    /// Producer cursor (shared) + producer-local cache of head_.
    alignas(64) std::atomic<uint64_t> tail_{0};
    uint64_t head_cache_ = 0;
    /// Consumer cursor (shared) + consumer-local cache of tail_.
    alignas(64) std::atomic<uint64_t> head_{0};
    uint64_t tail_cache_ = 0;
};

/// Heap-backed MsgRing with run-time byte capacity. Same record
/// format and header protocol as MsgRing (headers in a dedicated
/// atomic array, publish = release / observe = acquire); the payload
/// bytes are plain stores ordered by the header publication exactly
/// as in the template form. Production-only.
class DynMsgRing
{
  public:
    /// Creates a ring of at least `bytes` capacity (rounded up to a
    /// power of two, minimum 64).
    explicit DynMsgRing(size_t bytes)
        : mask_(ceil_pow2(bytes, 64) - 1),
          buf_(new uint8_t[mask_ + 1]()),
          hdr_(new std::atomic<uint64_t>[(mask_ + 1) / kHeaderBytes]())
    {
    }

    DynMsgRing(const DynMsgRing&) = delete;
    DynMsgRing& operator=(const DynMsgRing&) = delete;

    /// Producer: appends an n-byte message; false when there is not
    /// enough credit (or the message exceeds capacity/2).
    MSGPROXY_HOT_PATH bool
    try_push(const void* data, uint32_t n)
    {
        uint64_t need = record_bytes(n);
        if (need > (mask_ + 1) / 2)
            return false;
        uint64_t head = head_.load(std::memory_order_acquire);
        if (tail_ + need - head > mask_ + 1)
            return false;
        uint64_t pos = tail_ + kHeaderBytes;
        const auto* src = static_cast<const uint8_t*>(data);
        for (uint32_t i = 0; i < n; ++i)
            buf_[(pos + i) & mask_] = src[i];
        hdr_at(tail_).store((static_cast<uint64_t>(1) << 63) | n,
                            std::memory_order_release);
        tail_ += need;
        return true;
    }

    /// Consumer: pops the head message into out (resized); false when
    /// empty.
    template <typename Vec>
    MSGPROXY_HOT_PATH bool
    try_pop(Vec& out)
    {
        uint64_t h = hdr_at(chead_).load(std::memory_order_acquire);
        if ((h >> 63) == 0)
            return false;
        auto n = static_cast<uint32_t>(h & 0xffffffffu);
        out.resize(n);
        uint64_t pos = chead_ + kHeaderBytes;
        for (uint32_t i = 0; i < n; ++i)
            out[i] = buf_[(pos + i) & mask_];
        hdr_at(chead_).store(0, std::memory_order_release);
        chead_ += record_bytes(n);
        head_.store(chead_, std::memory_order_release);
        return true;
    }

    /// Consumer: true when no message is queued.
    MSGPROXY_HOT_PATH bool
    empty() const
    {
        return (hdr_at(chead_).load(std::memory_order_acquire) >> 63) ==
               0;
    }

    /// Capacity in bytes (after power-of-two rounding).
    size_t capacity_bytes() const { return mask_ + 1; }

  private:
    static constexpr uint32_t kHeaderBytes = 8;

    static uint64_t
    record_bytes(uint32_t n)
    {
        return kHeaderBytes +
               ((static_cast<uint64_t>(n) + kHeaderBytes - 1) /
                kHeaderBytes) *
                   kHeaderBytes;
    }

    std::atomic<uint64_t>&
    hdr_at(uint64_t pos)
    {
        return hdr_[(pos & mask_) / kHeaderBytes];
    }

    const std::atomic<uint64_t>&
    hdr_at(uint64_t pos) const
    {
        return hdr_[(pos & mask_) / kHeaderBytes];
    }

    uint64_t mask_;
    std::unique_ptr<uint8_t[]> buf_;
    /// Per-record full/empty headers, indexed by record start / 8.
    std::unique_ptr<std::atomic<uint64_t>[]> hdr_;
    /// Producer-local write cursor.
    alignas(64) uint64_t tail_ = 0;
    /// Consumer-local read cursor, mirrored to head_ for the
    /// producer's space accounting.
    alignas(64) uint64_t chead_ = 0;
    std::atomic<uint64_t> head_{0};
};

} // namespace spsc

#endif // MSGPROXY_SPSC_RING_QUEUE_H
