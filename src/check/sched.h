/// \file
/// Deterministic interleaving explorer for two-to-three-thread
/// lock-free histories (a miniature Loom/Relacy in the spirit of the
/// dynamic partial-order tools): simulated threads run as real
/// std::threads under a baton scheduler, so exactly one runs at a
/// time and the scheduler decides, at every atomic operation, which
/// thread advances next. Schedules are enumerated exhaustively by
/// depth-first backtracking over the choice points (or sampled with a
/// seeded RNG), so an ordering bug is found deterministically instead
/// of probabilistically.
///
/// Memory model: operations execute sequentially consistently per
/// location (the baton serializes them), and the acquire/release
/// semantics are checked with vector-clock happens-before tracking —
/// a release store publishes the storing thread's clock, an acquire
/// load joins the clock published by the store it reads, and every
/// *plain* (non-atomic) access is checked against the last write/read
/// epochs of its cell. A protocol that relies on an ordering weaker
/// than it declares therefore shows up as a data race on the payload
/// cells in some explored schedule — precisely the failure TSan would
/// need luck to trigger. (Store buffering / relaxed value staleness
/// is not modeled; this checker validates the release/acquire
/// discipline, not relaxed-only algorithms.)
///
/// Usage (see tests/check_test.cc):
///
///     check::Options opts;                 // exhaustive by default
///     check::Result r = check::explore(opts, [](check::Sim& sim) {
///         auto q = std::make_shared<spsc::RingQueue<
///             int, 2, check::CheckedAtomics>>();
///         sim.spawn([q] { /* producer: bounded attempts only */ });
///         sim.spawn([q] { /* consumer: bounded attempts only */ });
///     });
///     ASSERT_TRUE(r.ok()) << r.summary();
///
/// Thread bodies must be *bounded* (no unbounded retry loops): the
/// explorer enumerates every schedule, and an infinite spin gives an
/// infinite schedule (a per-execution step limit aborts runaways and
/// reports them).

#ifndef MSGPROXY_CHECK_SCHED_H
#define MSGPROXY_CHECK_SCHED_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace check {

/// Maximum simulated threads per execution, including the implicit
/// "init" context (index 0) that runs setup and teardown.
constexpr int kMaxThreads = 4;

/// Component-wise vector clock over kMaxThreads contexts.
struct VectorClock
{
    uint64_t c[kMaxThreads] = {};

    void
    join(const VectorClock& o)
    {
        for (int i = 0; i < kMaxThreads; ++i)
            if (o.c[i] > c[i])
                c[i] = o.c[i];
    }

    void
    clear()
    {
        for (auto& x : c)
            x = 0;
    }
};

/// One detected happens-before violation.
struct Race
{
    std::string what; ///< description (dedup key across executions)
};

struct Options
{
    enum class Mode { kExhaustive, kRandom };

    Mode mode = Mode::kExhaustive;
    /// Random mode: RNG seed and number of sampled executions.
    uint64_t seed = 1;
    size_t random_executions = 1000;
    /// Exhaustive mode: stop after this many executions even if the
    /// schedule tree is not exhausted (Result::exhausted tells).
    size_t max_executions = 200000;
    /// Per-execution scheduling-step bound; schedules longer than
    /// this are aborted (Result::step_limit_hit).
    size_t max_steps = 100000;
};

struct Result
{
    size_t executions = 0;
    bool exhausted = false;     ///< exhaustive mode covered the tree
    bool step_limit_hit = false;
    std::vector<Race> races;    ///< deduplicated across executions

    bool ok() const { return races.empty() && !step_limit_hit; }

    /// Human-readable digest for test failure messages.
    std::string summary() const;
};

/// One execution's scheduler + happens-before state. Created by
/// explore() for every schedule; user code only calls spawn() (from
/// the setup callback) — the instrumented cells in check/atomic.h
/// call everything else.
class Sim
{
  public:
    /// The Sim owning the calling thread, or nullptr when the caller
    /// runs outside an exploration (instrumented cells then degrade
    /// to plain behaviour).
    static Sim* current();

    /// Registers a simulated thread (setup phase only; at most
    /// kMaxThreads - 1 of them).
    void spawn(std::function<void()> body);

    /// Schedule point: hands the baton back to the scheduler and
    /// blocks until this thread is picked again. No-op on the init
    /// context.
    void yield();

    /// Index of the calling context (0 = init).
    int current_thread() const;

    /// The calling context's clock. Bumps of the caller's own
    /// component are done via tick().
    VectorClock& current_clock();

    /// Increments the calling context's own clock component and
    /// returns the new value (the epoch of an access made now).
    uint64_t tick();

    /// Records a happens-before violation (deduplicated by `what`).
    void report_race(const std::string& what);

  private:
    friend Result explore(const Options& opts,
                          const std::function<void(Sim&)>& setup);

    explicit Sim(const Options& opts, const std::vector<size_t>& prefix,
                 uint64_t rng_state);
    ~Sim();

    void run_all();
    void thread_main(int tid);
    size_t pick(size_t n_choices);
    uint64_t rng_next();

    struct ThreadRec
    {
        std::thread th;
        std::function<void()> body;
        bool done = false;
    };

    const Options& opts_;
    const std::vector<size_t>& prefix_; ///< replayed choice prefix
    std::vector<size_t> choices_;       ///< choices made this run
    std::vector<size_t> widths_;        ///< alternatives per choice
    uint64_t rng_;

    /// Guards the baton handshake. mp::Mutex (not std::mutex) so
    /// Clang Thread Safety Analysis can verify the guarded fields;
    /// cv_ is condition_variable_any because it waits on the wrapper
    /// (BasicLockable) directly.
    mp::Mutex m_;
    std::condition_variable_any cv_;
    /// -1: scheduler owns the baton.
    int active_ MP_GUARDED_BY(m_) = -1;
    bool aborting_ MP_GUARDED_BY(m_) = false;
    size_t steps_ MP_GUARDED_BY(m_) = 0;
    bool step_limit_hit_ MP_GUARDED_BY(m_) = false;

    std::vector<ThreadRec> threads_; ///< simulated threads (tid - 1)
    VectorClock clocks_[kMaxThreads];
    std::vector<Race> races_;
};

/// Runs `setup` once per schedule: it must allocate the state under
/// test (shared_ptr captured by the thread bodies, so it survives
/// until the last body is destroyed) and spawn the simulated
/// threads. Explores schedules per `opts` and returns the merged
/// result.
Result explore(const Options& opts,
               const std::function<void(Sim&)>& setup);

} // namespace check

#endif // MSGPROXY_CHECK_SCHED_H
