/// \file
/// Deterministic cluster chaos orchestrator: N in-process proxy::Node
/// instances wired full-mesh over either wire backend, with seeded
/// kill / restart / partition / heal controls and the quiescent
/// custody accounting the crash-fault tests gate on.
///
/// The orchestrator owns everything a node needs to be killed and
/// reincarnated under traffic: per-node segment memory that outlives
/// the node object, per-node listen addresses (fresh per
/// incarnation), and the monotone epoch counter each reincarnation
/// rejoins with. Schedules are driven by the caller from ONE thread
/// (the chaos tests interleave submits and faults in a seeded loop);
/// the proxy threads of the surviving nodes race the faults — that is
/// the point.
///
/// Exact accounting contract (see DESIGN.md "Failure detection &
/// failover"): after the caller has collected every completion flag,
/// settle() stops the survivors, retires every dead peer's wiring
/// (Node::forget_peer), drains the return paths
/// (Node::quiesce_returns), and sums pooled packet custody over the
/// survivors. Every pooled packet a surviving node ever took from its
/// pool must be home again: leaks() == 0, printed by the tests as
/// PKT_LEAKS_TOTAL for tools/check.sh cluster to gate on.

#ifndef MSGPROXY_CHECK_CLUSTER_H
#define MSGPROXY_CHECK_CLUSTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "proxy/runtime.h"

namespace check {

/// splitmix64: the seeded PRNG behind every chaos schedule. Small,
/// fast, and stable across platforms, so a failing storm replays
/// from its seed alone.
class SplitMix
{
  public:
    explicit SplitMix(uint64_t seed) : s_(seed) {}

    uint64_t
    next()
    {
        uint64_t z = (s_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, n).
    uint64_t
    below(uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

    /// Uniform in [0, 1).
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t s_;
};

struct ClusterParams
{
    /// Cluster size (node ids 0..nodes-1).
    int nodes = 3;
    /// Wire backend for every inter-node link.
    net::TransportKind transport = net::TransportKind::kInProc;
    /// Schedule seed (rng() streams from it; print it on failure).
    uint64_t seed = 1;
    /// Remote-access segment registered per node (segment id 0).
    size_t seg_bytes = 256 * 1024;
    /// Per-node config template. id, transport, and epoch are
    /// overwritten per node/incarnation; everything else (proxies,
    /// reliability, fts, pool sizes, fault plan) is taken as given.
    proxy::NodeConfig base{};
};

class Cluster
{
  public:
    /// Creates the nodes (epoch 1 each) without wiring or starting
    /// them. Each node gets one endpoint and one remote-access
    /// segment (id 0) over cluster-owned memory.
    MSGPROXY_QUIESCENT explicit Cluster(const ClusterParams& p);
    MSGPROXY_QUIESCENT ~Cluster();

    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    /// Wires the full mesh (node j dials every i < j) and starts
    /// every node.
    MSGPROXY_QUIESCENT void start();

    /// Crash-kills node `id` mid-flight: the Node is destroyed while
    /// the survivors run. Sockets observe the close immediately; the
    /// in-process backend needs the heartbeat detector (base.fts) or
    /// RTO exhaustion to notice.
    void kill(int id);

    /// Reincarnates a killed node under a fresh epoch: stops every
    /// survivor (quiescent re-wiring), retires the dead incarnation's
    /// wiring from each (forget_peer), constructs the replacement
    /// with epoch+1 and a fresh listen address, re-dials the mesh,
    /// and restarts everything. Survivor traffic submitted before the
    /// stop completes or fails through the normal paths.
    MSGPROXY_QUIESCENT void restart(int id);

    /// Drops every packet between a and b, both directions, until
    /// heal(). Retransmissions escalate, so a partition outliving the
    /// retry budget becomes a (sticky) mutual death verdict.
    void partition(int a, int b);
    void heal(int a, int b);

    /// Pooled-packet custody summed over the live nodes, taken
    /// quiescently by settle().
    struct Custody
    {
        uint64_t pool_hits = 0;
        uint64_t pool_returns = 0;
        uint64_t pool_misses = 0;
        uint64_t heap_frees = 0;

        /// Pooled packets not home: the tests' PKT_LEAKS_TOTAL.
        uint64_t
        leaks() const
        {
            return pool_hits - pool_returns;
        }
    };

    /// Exact accounting after the caller collected its completion
    /// flags: stop all, forget every dead peer, drain returns, sum
    /// custody. In-flight acks may need a few drain cycles to come
    /// home, so a nonzero balance briefly restarts the survivors and
    /// retries until the deadline. Leaves the cluster stopped.
    MSGPROXY_QUIESCENT Custody settle(uint64_t timeout_ms = 30000);

    /// Restarts every live node after settle() (wiring is intact).
    MSGPROXY_QUIESCENT void start_all();
    MSGPROXY_QUIESCENT void stop_all();

    /// Blocks until `node` declares `peer` unreachable; returns the
    /// wait in nanoseconds, or -1 on timeout. The detection-latency
    /// probe of the EXPERIMENTS.md table.
    int64_t wait_peer_unreachable(int node, int peer,
                                  uint64_t timeout_ms = 30000);

    bool
    alive(int id) const
    {
        return nodes_[static_cast<size_t>(id)] != nullptr;
    }

    int alive_count() const;

    /// Any live node id (schedules need a traffic source).
    int first_alive() const;

    proxy::Node&
    node(int id)
    {
        return *nodes_[static_cast<size_t>(id)];
    }

    proxy::Endpoint&
    endpoint(int id)
    {
        return *eps_[static_cast<size_t>(id)];
    }

    /// The node's registered segment memory (segment id 0).
    uint8_t*
    seg(int id)
    {
        return segs_[static_cast<size_t>(id)].data();
    }

    size_t
    seg_size() const
    {
        return params_.seg_bytes;
    }

    /// The schedule PRNG (seeded from params.seed).
    SplitMix&
    rng()
    {
        return rng_;
    }

    const ClusterParams&
    params() const
    {
        return params_;
    }

  private:
    /// Constructs node `id` at its current epoch and binds its fresh
    /// listen address. The Node is created stopped and unwired.
    MSGPROXY_QUIESCENT void make_node(int id);
    /// Drops every dead peer's wiring from every stopped survivor
    /// (idempotent; a never-wired or already-forgotten peer is a
    /// no-op).
    MSGPROXY_QUIESCENT void forget_dead();

    ClusterParams params_;
    SplitMix rng_;
    std::vector<std::unique_ptr<proxy::Node>> nodes_;
    std::vector<proxy::Endpoint*> eps_;
    /// Segment memory per node id: outlives node incarnations so a
    /// kill never invalidates a peer's in-flight PUT target.
    std::vector<std::vector<uint8_t>> segs_;
    std::vector<std::string> addrs_;
    std::vector<uint64_t> epochs_;
    bool started_ = false;
};

} // namespace check

#endif // MSGPROXY_CHECK_CLUSTER_H
