#include "check/sched.h"

#include <set>
#include <sstream>

#include "util/log.h"

namespace check {

namespace {

/// Thrown through a simulated thread to unwind it when an execution
/// is aborted (step limit). Thread bodies must be exception-safe.
struct StopExecution
{
};

thread_local Sim* g_current = nullptr;
thread_local int g_tid = 0;

} // namespace

std::string
Result::summary() const
{
    std::ostringstream os;
    os << "executions=" << executions
       << (exhausted ? " (exhaustive)" : " (truncated)");
    if (step_limit_hit)
        os << " [step limit hit: unbounded schedule?]";
    os << ", races=" << races.size();
    for (const auto& r : races)
        os << "\n  race: " << r.what;
    return os.str();
}

Sim*
Sim::current()
{
    return g_current;
}

Sim::Sim(const Options& opts, const std::vector<size_t>& prefix,
         uint64_t rng_state)
    : opts_(opts), prefix_(prefix), rng_(rng_state ? rng_state : 1)
{
}

Sim::~Sim()
{
    // run_all() joins; this is a backstop for setup() throwing.
    for (auto& t : threads_)
        if (t.th.joinable()) {
            {
                mp::MutexLock lk(m_);
                aborting_ = true;
                active_ = static_cast<int>(&t - threads_.data()) + 1;
            }
            cv_.notify_all();
            t.th.join();
        }
}

void
Sim::spawn(std::function<void()> body)
{
    MP_CHECK(threads_.size() + 1 < kMaxThreads,
             "check::Sim: too many simulated threads");
    int tid = static_cast<int>(threads_.size()) + 1;
    // The new thread inherits everything the init context has done so
    // far (setup writes happen-before every simulated access).
    clocks_[tid] = clocks_[0];
    clocks_[tid].c[tid]++;
    threads_.emplace_back();
    threads_.back().body = std::move(body);
    threads_.back().th = std::thread([this, tid] { thread_main(tid); });
}

int
Sim::current_thread() const
{
    return g_tid;
}

VectorClock&
Sim::current_clock()
{
    return clocks_[g_tid];
}

uint64_t
Sim::tick()
{
    return ++clocks_[g_tid].c[g_tid];
}

void
Sim::report_race(const std::string& what)
{
    for (const auto& r : races_)
        if (r.what == what)
            return;
    races_.push_back(Race{what});
}

uint64_t
Sim::rng_next()
{
    // xorshift64: deterministic, seedable, good enough for schedule
    // sampling.
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
}

size_t
Sim::pick(size_t n_choices)
{
    size_t pos = choices_.size();
    size_t c;
    if (pos < prefix_.size()) {
        c = prefix_[pos]; // replaying a recorded prefix
    } else if (opts_.mode == Options::Mode::kRandom) {
        c = rng_next() % n_choices;
    } else {
        c = 0; // first untried branch; backtracking advances it
    }
    MP_CHECK(c < n_choices, "check::Sim: corrupt schedule prefix");
    choices_.push_back(c);
    widths_.push_back(n_choices);
    return c;
}

void
Sim::yield()
{
    int tid = g_tid;
    if (tid == 0)
        return; // init context is never scheduled
    mp::MutexLock lk(m_);
    if (aborting_)
        throw StopExecution{};
    active_ = -1;
    cv_.notify_all();
    cv_.wait(m_, [&] { return active_ == tid; });
    if (aborting_)
        throw StopExecution{};
}

void
Sim::thread_main(int tid)
{
    g_current = this;
    g_tid = tid;
    bool run_body;
    {
        mp::MutexLock lk(m_);
        cv_.wait(m_, [&] { return active_ == tid; });
        run_body = !aborting_;
    }
    if (run_body) {
        try {
            threads_[static_cast<size_t>(tid) - 1].body();
        } catch (const StopExecution&) {
            // unwound by an aborted execution; nothing to do
        }
    }
    mp::MutexLock lk(m_);
    threads_[static_cast<size_t>(tid) - 1].done = true;
    active_ = -1;
    cv_.notify_all();
}

void
Sim::run_all()
{
    for (;;) {
        // Simulated threads never block (lock-free histories), so
        // every not-yet-finished thread is runnable.
        std::vector<int> runnable;
        for (size_t i = 0; i < threads_.size(); ++i)
            if (!threads_[i].done)
                runnable.push_back(static_cast<int>(i) + 1);
        if (runnable.empty())
            break;
        size_t idx = 0;
        {
            mp::MutexLock lk(m_);
            if (runnable.size() > 1 && !aborting_)
                idx = pick(runnable.size());
        }
        int tid = runnable[idx];
        {
            mp::MutexLock lk(m_);
            active_ = tid;
            cv_.notify_all();
            cv_.wait(m_, [&] { return active_ == -1; });
            if (++steps_ > opts_.max_steps && !aborting_) {
                aborting_ = true;
                step_limit_hit_ = true;
            }
        }
    }
    for (auto& t : threads_)
        if (t.th.joinable())
            t.th.join();
    // Everything the simulated threads did happens-before the init
    // context's post-run inspection.
    for (int i = 1; i < kMaxThreads; ++i)
        clocks_[0].join(clocks_[i]);
}

Result
explore(const Options& opts, const std::function<void(Sim&)>& setup)
{
    Result res;
    std::set<std::string> seen;
    std::vector<size_t> prefix;
    uint64_t rng_state = opts.seed ? opts.seed : 1;

    for (;;) {
        Sim sim(opts, prefix, rng_state);
        g_current = &sim;
        g_tid = 0;
        setup(sim);
        sim.run_all();
        g_current = nullptr;

        ++res.executions;
        {
            // All simulated threads are joined; the lock is only for
            // the thread-safety analysis's benefit.
            mp::MutexLock lk(sim.m_);
            res.step_limit_hit =
                res.step_limit_hit || sim.step_limit_hit_;
        }
        for (const auto& r : sim.races_)
            if (seen.insert(r.what).second)
                res.races.push_back(r);

        if (opts.mode == Options::Mode::kRandom) {
            rng_state = sim.rng_;
            if (res.executions >= opts.random_executions)
                break;
        } else {
            // Depth-first backtracking: advance the deepest choice
            // point that still has an untried alternative.
            prefix.assign(sim.choices_.begin(), sim.choices_.end());
            while (!prefix.empty() &&
                   prefix.back() + 1 >= sim.widths_[prefix.size() - 1])
                prefix.pop_back();
            if (prefix.empty()) {
                res.exhausted = true;
                break;
            }
            prefix.back()++;
            if (res.executions >= opts.max_executions)
                break; // tree not exhausted; res.exhausted stays false
        }
    }
    return res;
}

} // namespace check
