/// \file
/// Cluster chaos orchestrator implementation. See cluster.h for the
/// contract; the only subtlety here is ordering at the quiescent
/// boundaries — destroy-before-forget lets the dying incarnation push
/// survivor-owned pooled packets back through the shared return rings
/// before the survivors sweep and drop the channels.

#include "check/cluster.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/log.h"

namespace check {

namespace {

/// Collision-free listen address per incarnation (same scheme as
/// bench/bench_wiring.h, duplicated so mp_check does not grow a
/// dependency on the bench tree).
std::string
unique_addr(net::TransportKind kind)
{
    static std::atomic<uint64_t> ctr{0};
    const uint64_t n = ctr.fetch_add(1);
    const std::string tag = std::to_string(::getpid()) + "-" +
                            std::to_string(n);
    if (kind == net::TransportKind::kSocket)
        return "unix:///tmp/msgproxy-cluster-" + tag + ".sock";
    return "inproc://cluster-" + tag;
}

uint64_t
now_ms()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

Cluster::Cluster(const ClusterParams& p)
    : params_(p), rng_(p.seed)
{
    MP_CHECK(params_.nodes >= 2, "a cluster needs at least 2 nodes");
    const auto n = static_cast<size_t>(params_.nodes);
    nodes_.resize(n);
    eps_.resize(n, nullptr);
    segs_.resize(n);
    addrs_.resize(n);
    epochs_.resize(n, 1);
    for (auto& s : segs_)
        s.assign(params_.seg_bytes, 0);
    for (int id = 0; id < params_.nodes; ++id)
        make_node(id);
}

Cluster::~Cluster()
{
    stop_all();
}

void
Cluster::make_node(int id)
{
    const auto i = static_cast<size_t>(id);
    proxy::NodeConfig cfg = params_.base;
    cfg.id = id;
    cfg.transport = params_.transport;
    cfg.epoch = epochs_[i];
    nodes_[i] = std::make_unique<proxy::Node>(cfg);
    eps_[i] = &nodes_[i]->create_endpoint();
    eps_[i]->register_segment(segs_[i].data(), segs_[i].size());
    addrs_[i] = unique_addr(params_.transport);
    nodes_[i]->listen(addrs_[i]);
}

void
Cluster::start()
{
    MP_CHECK(!started_, "cluster already started");
    for (int j = 1; j < params_.nodes; ++j) {
        for (int i = 0; i < j; ++i)
            nodes_[static_cast<size_t>(j)]->connect(
                addrs_[static_cast<size_t>(i)]);
    }
    started_ = true;
    start_all();
}

void
Cluster::start_all()
{
    for (auto& nd : nodes_) {
        if (nd != nullptr)
            nd->start();
    }
}

void
Cluster::stop_all()
{
    for (auto& nd : nodes_) {
        if (nd != nullptr)
            nd->stop();
    }
}

void
Cluster::kill(int id)
{
    const auto i = static_cast<size_t>(id);
    MP_CHECK(nodes_[i] != nullptr, "kill(" << id << "): already dead");
    eps_[i] = nullptr;
    nodes_[i].reset(); // survivors keep running: crash, not shutdown
}

void
Cluster::forget_dead()
{
    for (int d = 0; d < params_.nodes; ++d) {
        if (nodes_[static_cast<size_t>(d)] != nullptr)
            continue;
        for (auto& nd : nodes_) {
            if (nd != nullptr)
                nd->forget_peer(d);
        }
    }
}

void
Cluster::restart(int id)
{
    const auto i = static_cast<size_t>(id);
    MP_CHECK(nodes_[i] == nullptr,
             "restart(" << id << "): node is alive (kill first)");
    // Quiescent re-wiring: every survivor must be stopped before its
    // link state toward the dead incarnation can be swept.
    stop_all();
    forget_dead();
    ++epochs_[i]; // the reincarnation rejoins strictly newer
    make_node(id);
    for (int p = 0; p < params_.nodes; ++p) {
        if (p != id && nodes_[static_cast<size_t>(p)] != nullptr)
            nodes_[static_cast<size_t>(p)]->connect(addrs_[i]);
    }
    start_all();
}

void
Cluster::partition(int a, int b)
{
    if (nodes_[static_cast<size_t>(a)] != nullptr)
        nodes_[static_cast<size_t>(a)]->set_peer_blackhole(b, true);
    if (nodes_[static_cast<size_t>(b)] != nullptr)
        nodes_[static_cast<size_t>(b)]->set_peer_blackhole(a, true);
}

void
Cluster::heal(int a, int b)
{
    if (nodes_[static_cast<size_t>(a)] != nullptr)
        nodes_[static_cast<size_t>(a)]->set_peer_blackhole(b, false);
    if (nodes_[static_cast<size_t>(b)] != nullptr)
        nodes_[static_cast<size_t>(b)]->set_peer_blackhole(a, false);
}

Cluster::Custody
Cluster::settle(uint64_t timeout_ms)
{
    const uint64_t deadline = now_ms() + timeout_ms;
    Custody c;
    for (;;) {
        stop_all();
        forget_dead();
        c = Custody{};
        for (auto& nd : nodes_) {
            if (nd == nullptr)
                continue;
            nd->quiesce_returns();
            const proxy::NodeStats s = nd->stats();
            c.pool_hits += s.pool_hits;
            c.pool_returns += s.pool_returns;
            c.pool_misses += s.pool_misses;
            c.heap_frees += s.heap_frees;
        }
        if (c.leaks() == 0 || now_ms() >= deadline)
            return c;
        // Packets still riding the wire (unpopped rings, unflushed
        // acks, socket buffers): run the survivors briefly so their
        // proxies drain them home, then re-balance.
        start_all();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

int64_t
Cluster::wait_peer_unreachable(int node, int peer,
                               uint64_t timeout_ms)
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline =
        t0 + std::chrono::milliseconds(timeout_ms);
    proxy::Node& nd = *nodes_[static_cast<size_t>(node)];
    while (!nd.peer_unreachable(peer)) {
        if (std::chrono::steady_clock::now() >= deadline)
            return -1;
        std::this_thread::yield();
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
Cluster::alive_count() const
{
    int n = 0;
    for (const auto& nd : nodes_)
        n += nd != nullptr ? 1 : 0;
    return n;
}

int
Cluster::first_alive() const
{
    for (int id = 0; id < params_.nodes; ++id) {
        if (nodes_[static_cast<size_t>(id)] != nullptr)
            return id;
    }
    MP_CHECK(false, "no live nodes");
    return -1;
}

} // namespace check
