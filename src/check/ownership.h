/// \file
/// Thread-ownership lint: debug-build assertions that enforce the
/// single-producer / single-consumer contracts of the proxy runtime
/// (who may touch an Endpoint's command queue and receive ring, and
/// that segments/rqueues/ccbs are proxy-thread-only once a Node is
/// running).
///
/// Enforcement is compiled in only when MSGPROXY_CHECK_OWNERSHIP is
/// defined (CMake: -DMSGPROXY_CHECK_OWNERSHIP=ON); otherwise every
/// method is an empty inline and the only cost is one dormant
/// std::atomic per guarded role. A violation calls MP_PANIC (abort):
/// it is a bug in the caller, exactly like a TSan-reported race.

#ifndef MSGPROXY_CHECK_OWNERSHIP_H
#define MSGPROXY_CHECK_OWNERSHIP_H

#include <atomic>
#include <thread>

#include "util/log.h"
#include "util/orders.h"

namespace check {

/// Records which OS thread owns one role (producer side, consumer
/// side, proxy loop) of a shared structure and asserts that the same
/// thread keeps playing it.
class ThreadOwner
{
  public:
    /// Asserts the calling thread owns this role. The first caller
    /// binds the role to itself; use release() (or bind()) when
    /// ownership is legitimately handed to another thread.
    void
    assert_owner([[maybe_unused]] const char* what)
    {
#ifdef MSGPROXY_CHECK_OWNERSHIP
        std::thread::id self = std::this_thread::get_id();
        std::thread::id unbound{};
        if (owner_.compare_exchange_strong(unbound, self,
                                           mp::ord::handoff))
            return; // first toucher binds the role
        if (unbound != self) {
            MP_PANIC("thread-ownership violation: "
                     << what << " (owner thread " << unbound
                     << ", violator " << self << ")");
        }
#endif
    }

    /// Forcibly binds the role to the calling thread.
    void
    bind()
    {
#ifdef MSGPROXY_CHECK_OWNERSHIP
        owner_.store(std::this_thread::get_id(),
                     mp::ord::publish);
#endif
    }

    /// Unbinds the role; the next assert_owner() caller re-binds it.
    void
    release()
    {
#ifdef MSGPROXY_CHECK_OWNERSHIP
        owner_.store(std::thread::id{}, mp::ord::publish);
#endif
    }

  private:
    /// Present unconditionally so the layout does not depend on the
    /// macro (dormant when enforcement is compiled out).
    std::atomic<std::thread::id> owner_{};
};

} // namespace check

#endif // MSGPROXY_CHECK_OWNERSHIP_H
