/// \file
/// Instrumented atomic / plain cells for the interleaving explorer
/// (check/sched.h), and the `CheckedAtomics` policy that plugs them
/// into the spsc:: queues.
///
/// check::Atomic<T> mirrors the std::atomic<T> load/store surface.
/// Under an active Sim it (1) yields to the scheduler before every
/// operation — the schedule points the explorer branches on — and
/// (2) maintains the happens-before machinery: a release store
/// attaches the storing thread's vector clock to the cell, an
/// acquire load joins the attached clock into the loading thread's
/// clock, and a relaxed store *clears* the attached clock (an
/// acquire load that reads a relaxed store synchronizes with
/// nothing).
///
/// check::CheckedPlainCell<T> guards non-atomic payload data with
/// FastTrack-style epoch checks: an access racing with an earlier
/// access it does not happen-after is reported to the Sim. Outside a
/// Sim both types degrade to plain behaviour, so checked structures
/// can be constructed/inspected freely before and after explore().

#ifndef MSGPROXY_CHECK_ATOMIC_H
#define MSGPROXY_CHECK_ATOMIC_H

#include <atomic>
#include <string>
#include <typeinfo>
#include <utility>

#include "check/sched.h"

namespace check {

namespace detail {

/// Per-cell access history for plain (non-atomic) race detection.
struct PlainMeta
{
    int last_writer = -1;
    uint64_t last_write_epoch = 0;
    /// reads.c[t]: epoch of thread t's last read since the last write.
    VectorClock reads;
};

inline void
on_plain_write(PlainMeta& m, const char* type_name)
{
    Sim* sim = Sim::current();
    if (sim == nullptr)
        return;
    int t = sim->current_thread();
    VectorClock& ct = sim->current_clock();
    if (m.last_writer >= 0 && m.last_writer != t &&
        ct.c[m.last_writer] < m.last_write_epoch) {
        sim->report_race(
            std::string("plain write races with earlier write (cell type ") +
            type_name + ")");
    }
    for (int u = 0; u < kMaxThreads; ++u) {
        if (u != t && m.reads.c[u] > ct.c[u]) {
            sim->report_race(
                std::string("plain write races with earlier read (cell type ") +
                type_name + ")");
            break;
        }
    }
    m.last_writer = t;
    m.last_write_epoch = sim->tick();
    m.reads.clear();
}

inline void
on_plain_read(PlainMeta& m, const char* type_name)
{
    Sim* sim = Sim::current();
    if (sim == nullptr)
        return;
    int t = sim->current_thread();
    VectorClock& ct = sim->current_clock();
    if (m.last_writer >= 0 && m.last_writer != t &&
        ct.c[m.last_writer] < m.last_write_epoch) {
        sim->report_race(
            std::string("plain read races with earlier write (cell type ") +
            type_name + ")");
    }
    m.reads.c[t] = sim->tick();
}

} // namespace detail

/// Checked analogue of std::atomic<T> (load/store subset).
template <typename T>
class Atomic
{
  public:
    Atomic() noexcept = default;
    explicit Atomic(T v) noexcept : v_(v) {}
    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T
    load(std::memory_order mo = std::memory_order_seq_cst) const
    {
        Sim* sim = Sim::current();
        if (sim == nullptr)
            return v_;
        sim->yield(); // schedule point: explore orders around this load
        if (mo != std::memory_order_relaxed)
            sim->current_clock().join(rel_); // acquire: synchronize-with
        return v_;
    }

    void
    store(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        Sim* sim = Sim::current();
        if (sim == nullptr) {
            v_ = v;
            return;
        }
        sim->yield(); // schedule point
        if (mo == std::memory_order_release ||
            mo == std::memory_order_acq_rel ||
            mo == std::memory_order_seq_cst) {
            rel_ = sim->current_clock(); // publish our history
        } else {
            rel_.clear(); // relaxed store publishes nothing
        }
        v_ = v;
    }

    /// Read-modify-write: or `bits` in, return the previous value.
    /// Acquire side joins the attached clock; release side joins the
    /// RMW thread's clock *into* the attached clock rather than
    /// replacing it — an RMW continues the cell's release sequence,
    /// so earlier release stores keep synchronizing through it (the
    /// property the doorbell's stacked fetch_or chain leans on). A
    /// relaxed RMW leaves the attached clock untouched for the same
    /// reason.
    T
    fetch_or(T bits, std::memory_order mo = std::memory_order_seq_cst)
    {
        return rmw(mo, [bits](T old) { return static_cast<T>(old | bits); });
    }

    T
    fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst)
    {
        return rmw(mo, [d](T old) { return static_cast<T>(old + d); });
    }

    T
    exchange(T v, std::memory_order mo = std::memory_order_seq_cst)
    {
        return rmw(mo, [v](T) { return v; });
    }

  private:
    template <typename F>
    T
    rmw(std::memory_order mo, F&& f)
    {
        Sim* sim = Sim::current();
        if (sim == nullptr) {
            const T old = v_;
            v_ = f(old);
            return old;
        }
        sim->yield(); // schedule point
        const bool acq = mo == std::memory_order_acquire ||
                         mo == std::memory_order_acq_rel ||
                         mo == std::memory_order_seq_cst;
        const bool rel = mo == std::memory_order_release ||
                         mo == std::memory_order_acq_rel ||
                         mo == std::memory_order_seq_cst;
        if (acq)
            sim->current_clock().join(rel_);
        if (rel)
            rel_.join(sim->current_clock()); // extend, don't replace
        const T old = v_;
        v_ = f(old);
        return old;
    }

    T v_{};
    /// Clock attached by the most recent (release) store.
    VectorClock rel_;
};

/// Checked analogue of spsc::PlainCell<T>: plain data accesses with
/// happens-before race detection.
template <typename T>
class CheckedPlainCell
{
  public:
    CheckedPlainCell() = default;

    void
    put(T v)
    {
        detail::on_plain_write(meta_, typeid(T).name());
        v_ = std::move(v);
    }

    T
    take()
    {
        // A move-out mutates the cell: treat as a write (conflicts
        // with both reads and writes).
        detail::on_plain_write(meta_, typeid(T).name());
        return std::move(v_);
    }

    T
    get() const
    {
        detail::on_plain_read(meta_, typeid(T).name());
        return v_;
    }

  private:
    T v_{};
    mutable detail::PlainMeta meta_;
};

/// Atomics policy instantiating spsc:: queues under the checker.
struct CheckedAtomics
{
    template <typename U>
    using atomic_type = check::Atomic<U>;
    template <typename U>
    using plain_type = check::CheckedPlainCell<U>;
};

} // namespace check

#endif // MSGPROXY_CHECK_ATOMIC_H
